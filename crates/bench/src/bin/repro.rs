//! The reproduction harness: regenerate every table and figure.
//!
//! ```text
//! repro [ids…] [--trials N] [--seed S] [--threads T] [--cell-scale X]
//!       [--kernel exact|fast] [--channel scalar|jones] [--out DIR]
//! ```
//!
//! With no ids, runs the whole suite in paper order. Each report is
//! printed (measured rows next to the paper's claim) and written as CSV
//! under `--out` (default `results/`). The Fig. 2 / Fig. 20 trajectory
//! point clouds are additionally dumped as CSVs for plotting.

use experiments::runner::RunOpts;
use experiments::{all_experiments, Report};
use std::io::Write;

struct Args {
    ids: Vec<String>,
    opts: RunOpts,
    out_dir: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        opts: RunOpts::default(),
        out_dir: std::path::PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_val = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--trials" => {
                args.opts.trials =
                    next_val("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                args.opts.seed = next_val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.opts.threads =
                    next_val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--cell-scale" => {
                args.opts.cell_scale = next_val("--cell-scale")?
                    .parse()
                    .map_err(|e| format!("--cell-scale: {e}"))?;
            }
            "--kernel" => {
                args.opts.kernel = match next_val("--kernel")?.as_str() {
                    "exact" => polardraw_core::hmm::KernelOptions::exact(),
                    "fast" => polardraw_core::hmm::KernelOptions::fast(),
                    other => return Err(format!("--kernel: expected exact|fast, got {other}")),
                };
            }
            "--channel" => {
                let v = next_val("--channel")?;
                args.opts.channel = pen_sim::scene::ChannelMode::parse(&v)
                    .ok_or_else(|| format!("--channel: expected scalar|jones, got {v}"))?;
            }
            "--out" => args.out_dir = next_val("--out")?.into(),
            "--help" | "-h" => {
                return Err(
                    "usage: repro [ids…] [--trials N] [--seed S] [--threads T] [--cell-scale X] [--kernel exact|fast] [--channel scalar|jones] [--out DIR]"
                        .to_string(),
                )
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn write_outputs(dir: &std::path::Path, report: &Report) -> std::io::Result<()> {
    use rf_core::json::ToJson as _;
    std::fs::create_dir_all(dir)?;
    let csv = dir.join(format!("{}.csv", report.id));
    std::fs::File::create(csv)?.write_all(report.to_csv().as_bytes())?;
    let json = dir.join(format!("{}.json", report.id));
    std::fs::File::create(json)?.write_all(report.to_json().to_json_string().as_bytes())
}

fn dump_fig02_trajectories(dir: &std::path::Path, opts: &RunOpts) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, truth, trail) in experiments::exp::fig02::trajectories(opts) {
        let path = dir.join(format!("fig02_{}.csv", name.to_lowercase()));
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "kind,x_m,y_m")?;
        for p in truth {
            writeln!(f, "truth,{:.4},{:.4}", p.x, p.y)?;
        }
        for p in trail {
            writeln!(f, "recovered,{:.4},{:.4}", p.x, p.y)?;
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let defs = all_experiments();
    let selected: Vec<_> = if args.ids.is_empty() {
        defs
    } else {
        let mut out = Vec::new();
        for id in &args.ids {
            match defs.iter().find(|d| d.id == *id || d.produces.contains(&id.as_str())) {
                Some(d) => {
                    if !out.iter().any(|e: &experiments::ExperimentDef| e.id == d.id) {
                        out.push(d.clone());
                    }
                }
                None => {
                    eprintln!("unknown experiment id: {id}");
                    eprintln!(
                        "known: {}",
                        defs.iter()
                            .flat_map(|d| d.produces.iter())
                            .copied()
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };

    println!(
        "# PolarDraw reproduction — {} experiment(s), trials={}, seed={}, threads={}, channel={}",
        selected.len(),
        args.opts.trials,
        args.opts.seed,
        args.opts.threads,
        args.opts.channel.as_str()
    );
    let t0 = std::time::Instant::now();
    for def in &selected {
        let started = std::time::Instant::now();
        let reports = (def.run)(&args.opts);
        for report in &reports {
            println!("\n{report}");
            if let Err(e) = write_outputs(&args.out_dir, report) {
                eprintln!(
                    "warning: could not write {}/{}.{{csv,json}}: {e}",
                    args.out_dir.display(),
                    report.id
                );
            }
        }
        if def.id == "fig02" {
            if let Err(e) = dump_fig02_trajectories(&args.out_dir, &args.opts) {
                eprintln!("warning: could not dump fig02 trajectories: {e}");
            }
        }
        println!("[{} done in {:.1?}]", def.id, started.elapsed());
    }
    println!("\n# all done in {:.1?}; CSVs in {}", t0.elapsed(), args.out_dir.display());
}
