//! RF-IDraw-style antenna-pair interferometry tracker.
//!
//! RF-IDraw (Wang et al., SIGCOMM 2014) localizes a tag with pairs of
//! receive antennas: each pair's phase difference constrains the tag to
//! a family of hyperbolas, and pairs at *different baselines* resolve
//! each other — a closely-spaced ("coarse") pair is unambiguous but
//! blunt, a widely-spaced ("fine") pair is sharp but ambiguous; the
//! coarse spectrum picks the true branch of the fine one. The original
//! system uses eight antennas in two perpendicular arrays; the paper
//! compares the **four-antenna** variant ("Most COTS RFID readers
//! support four antennas apiece", §5.1), which we implement: one wide
//! horizontal pair (fine x-constraint) and one narrow vertical pair
//! (coarse, unambiguous y-constraint), plus the two cross pairs.
//!
//! Per-antenna cable phases make absolute pair differences meaningless;
//! like PolarDraw's bootstrap, the tracker calibrates every pair offset
//! against an assumed start position, then decodes the trajectory with
//! the shared grid beam search under a motion cap.

use crate::common::{window_reports, GridBeam};
use rf_core::{wrap_pi, Vec2, Vec3};
use rfid_sim::tracking::{Trail, TrajectoryTracker};
use rfid_sim::TagReport;

/// RF-IDraw configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RfIdrawConfig {
    /// Antenna positions, metres (board frame, writing plane z = 0).
    pub antennas: Vec<Vec3>,
    /// Antenna index pairs used as interferometers.
    pub pairs: Vec<(usize, usize)>,
    /// Window length, seconds.
    pub window_s: f64,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Maximum per-window displacement, metres.
    pub max_step_m: f64,
    /// Grid cell size, metres.
    pub cell_m: f64,
    /// Board region minimum corner.
    pub board_min: Vec2,
    /// Board region maximum corner.
    pub board_max: Vec2,
    /// Bootstrap position (pair offsets are calibrated against it).
    pub start_hint: Vec2,
    /// Beam width.
    pub beam: usize,
}

impl RfIdrawConfig {
    /// The four-antenna variant of §5.1: wide horizontal pair (fine) +
    /// narrow vertical pair (coarse) + cross pairs.
    pub fn four_antenna() -> RfIdrawConfig {
        RfIdrawConfig {
            antennas: vec![
                Vec3::new(-0.28, 0.1, 0.65), // 0: wide-left
                Vec3::new(0.28, 0.1, 0.65),  // 1: wide-right
                Vec3::new(0.0, 0.02, 0.65),  // 2: narrow-top
                Vec3::new(0.0, 0.18, 0.65),  // 3: narrow-bottom
            ],
            pairs: vec![(0, 1), (2, 3), (0, 2), (1, 3)],
            window_s: 0.05,
            wavelength_m: 0.3276,
            max_step_m: 0.01,
            cell_m: 0.0025,
            board_min: Vec2::new(-0.45, 0.35),
            board_max: Vec2::new(0.75, 1.1),
            start_hint: Vec2::new(-0.2, 0.7),
            beam: 2500,
        }
    }
}

/// The RF-IDraw tracker.
#[derive(Debug, Clone)]
pub struct RfIdraw {
    /// Configuration (public for experiment sweeps).
    pub config: RfIdrawConfig,
}

impl RfIdraw {
    /// Build a tracker.
    pub fn new(config: RfIdrawConfig) -> RfIdraw {
        RfIdraw { config }
    }

    fn pair_prediction(&self, p: Vec2, pair: (usize, usize)) -> f64 {
        let k = 4.0 * std::f64::consts::PI / self.config.wavelength_m;
        let (i, j) = pair;
        let p3 = p.with_z(0.0);
        k * (p3.distance(self.config.antennas[j]) - p3.distance(self.config.antennas[i]))
    }
}

impl TrajectoryTracker for RfIdraw {
    fn name(&self) -> &str {
        "RF-IDraw (4-antenna)"
    }

    fn antenna_count(&self) -> usize {
        self.config.antennas.len()
    }

    fn track(&self, reports: &[TagReport]) -> Trail {
        let cfg = &self.config;
        let n_ant = cfg.antennas.len();
        let windows = window_reports(reports, n_ant, cfg.window_s);
        if windows.len() < 2 {
            return Trail::default();
        }

        // Per-window measured pair differences, and per-pair calibration
        // offsets resolved at the first window where both pair members
        // reported.
        let mut offsets: Vec<Option<f64>> = vec![None; cfg.pairs.len()];
        let mut meas: Vec<Vec<Option<f64>>> = Vec::with_capacity(windows.len() - 1);
        let mut times = Vec::with_capacity(windows.len() - 1);
        for w in windows.iter().skip(1) {
            let row: Vec<Option<f64>> = cfg
                .pairs
                .iter()
                .enumerate()
                .map(|(pi, &(i, j))| match (w.phase[i], w.phase[j]) {
                    (Some(a), Some(b)) => {
                        let raw = wrap_pi(b - a);
                        let off = *offsets[pi].get_or_insert_with(|| {
                            raw - wrap_pi(self.pair_prediction(cfg.start_hint, (i, j)))
                        });
                        Some(wrap_pi(raw - off))
                    }
                    _ => None,
                })
                .collect();
            meas.push(row);
            times.push(w.t);
        }

        let grid = GridBeam::covering(cfg.board_min, cfg.board_max, cfg.cell_m, cfg.beam);
        let pairs = cfg.pairs.clone();
        let points = grid.decode(cfg.start_hint, meas.len(), cfg.max_step_m, |_, to, step| {
            let mut s = 0.0;
            for (pi, m) in meas[step].iter().enumerate() {
                if let Some(m) = m {
                    let pred = self.pair_prediction(to, pairs[pi]);
                    s += (m - pred).cos();
                }
            }
            s
        });
        let times: Vec<f64> = times.into_iter().take(points.len()).collect();
        Trail::new(times, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::wrap_tau;

    fn synth_reports(cfg: &RfIdrawConfig, path: &[Vec2]) -> Vec<TagReport> {
        let k = 4.0 * std::f64::consts::PI / cfg.wavelength_m;
        let mut out = Vec::new();
        for (i, p) in path.iter().enumerate() {
            let t = i as f64 * 0.01;
            let a = i % cfg.antennas.len();
            let phase = wrap_tau(k * p.with_z(0.0).distance(cfg.antennas[a]) + 1.3 * a as f64);
            out.push(TagReport { t, antenna: a, rssi_dbm: -40.0, phase_rad: phase, channel: 24, epc: 1 });
        }
        out
    }

    #[test]
    fn tracks_an_l_shaped_path() {
        let cfg = RfIdrawConfig::four_antenna();
        let start = cfg.start_hint;
        let mut path: Vec<Vec2> = (0..200)
            .map(|i| start + Vec2::new(0.0, 1.0) * (0.06 * i as f64 * 0.01))
            .collect();
        let corner = *path.last().unwrap();
        path.extend((0..200).map(|i| corner + Vec2::new(1.0, 0.0) * (0.06 * i as f64 * 0.01)));
        let reports = synth_reports(&cfg, &path);
        let trail = RfIdraw::new(cfg).track(&reports);
        assert!(!trail.is_empty());
        let end = *trail.points.last().unwrap();
        let true_end = *path.last().unwrap();
        assert!(
            end.distance(true_end) < 0.06,
            "end {end:?} vs truth {true_end:?}"
        );
    }

    #[test]
    fn still_tag_stays_put() {
        let cfg = RfIdrawConfig::four_antenna();
        let path = vec![cfg.start_hint; 200];
        let reports = synth_reports(&cfg, &path);
        let trail = RfIdraw::new(cfg.clone()).track(&reports);
        for p in &trail.points {
            assert!(p.distance(cfg.start_hint) < 0.03, "wandered to {p:?}");
        }
    }

    #[test]
    fn calibration_absorbs_cable_phases() {
        // Identical geometry, different per-antenna cable constants:
        // the recovered trails must match (offsets are calibrated out).
        let cfg = RfIdrawConfig::four_antenna();
        let path: Vec<Vec2> = (0..150)
            .map(|i| cfg.start_hint + Vec2::new(0.0, 0.06 * i as f64 * 0.01))
            .collect();
        let k = 4.0 * std::f64::consts::PI / cfg.wavelength_m;
        let mk = |cables: [f64; 4]| -> Vec<TagReport> {
            path.iter()
                .enumerate()
                .map(|(i, p)| {
                    let a = i % 4;
                    TagReport {
                        t: i as f64 * 0.01,
                        antenna: a,
                        rssi_dbm: -40.0,
                        phase_rad: wrap_tau(k * p.with_z(0.0).distance(cfg.antennas[a]) + cables[a]),
                        channel: 24,
                        epc: 1,
                    }
                })
                .collect()
        };
        let t1 = RfIdraw::new(cfg.clone()).track(&mk([0.0; 4]));
        let t2 = RfIdraw::new(cfg.clone()).track(&mk([0.4, 2.9, 1.7, 5.5]));
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.points.iter().zip(&t2.points) {
            assert!(a.distance(*b) < 0.02, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn reports_name_and_ports() {
        let r = RfIdraw::new(RfIdrawConfig::four_antenna());
        assert_eq!(r.name(), "RF-IDraw (4-antenna)");
        assert_eq!(r.antenna_count(), 4);
    }

    #[test]
    fn empty_reports_empty_trail() {
        assert!(RfIdraw::new(RfIdrawConfig::four_antenna()).track(&[]).is_empty());
    }
}
