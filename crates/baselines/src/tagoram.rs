//! Tagoram's differential augmented hologram (DAH) tracker.
//!
//! Tagoram (Yang et al., MobiCom 2014) localizes a moving tag by
//! building a *hologram*: every candidate grid position is scored by how
//! well the phases it predicts match the measurements. The *augmented,
//! differential* form scores phase **changes** between consecutive
//! readings instead of absolute phases, cancelling the unknown tag and
//! cable offsets:
//!
//! ```text
//! L(p_t | p_{t−1}) = Σ_j cos( Δθ_j,meas − 4π(‖p_t − a_j‖ − ‖p_{t−1} − a_j‖)/λ )
//! ```
//!
//! summed over antennas j with readings in both windows. We decode the
//! most consistent position sequence with the same grid beam search the
//! rest of the workspace uses. The paper runs Tagoram with 4 antennas
//! (its original configuration) and with 2 (hardware parity with
//! PolarDraw); antenna count is a constructor parameter here.

use crate::common::{window_reports, GridBeam};
use rf_core::angle::phase_diff;
use rf_core::{Vec2, Vec3};
use rfid_sim::tracking::{Trail, TrajectoryTracker};
use rfid_sim::TagReport;

/// Tagoram configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TagoramConfig {
    /// Antenna positions, metres (board frame, writing plane z = 0).
    pub antennas: Vec<Vec3>,
    /// Window length, seconds.
    pub window_s: f64,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Maximum per-window displacement, metres.
    pub max_step_m: f64,
    /// Grid cell size, metres.
    pub cell_m: f64,
    /// Board region minimum corner.
    pub board_min: Vec2,
    /// Board region maximum corner.
    pub board_max: Vec2,
    /// Bootstrap position.
    pub start_hint: Vec2,
    /// Beam width for decoding.
    pub beam: usize,
}

impl TagoramConfig {
    /// The paper's four-antenna rig (Fig. 17): a 2×2 array facing the
    /// writing block, 56 cm apart horizontally.
    pub fn four_antenna() -> TagoramConfig {
        TagoramConfig {
            antennas: vec![
                Vec3::new(-0.28, 0.05, 0.65),
                Vec3::new(0.28, 0.05, 0.65),
                Vec3::new(-0.28, 0.35, 0.65),
                Vec3::new(0.28, 0.35, 0.65),
            ],
            ..TagoramConfig::two_antenna()
        }
    }

    /// Hardware parity with PolarDraw: the same two antenna positions.
    pub fn two_antenna() -> TagoramConfig {
        TagoramConfig {
            antennas: vec![Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)],
            window_s: 0.05,
            wavelength_m: 0.3276,
            max_step_m: 0.01,
            cell_m: 0.0025,
            board_min: Vec2::new(-0.45, 0.35),
            board_max: Vec2::new(0.75, 1.1),
            start_hint: Vec2::new(-0.2, 0.7),
            beam: 2500,
        }
    }
}

/// The Tagoram tracker.
#[derive(Debug, Clone)]
pub struct Tagoram {
    /// Configuration (public for experiment sweeps).
    pub config: TagoramConfig,
}

impl Tagoram {
    /// Build a tracker.
    pub fn new(config: TagoramConfig) -> Tagoram {
        Tagoram { config }
    }
}

impl TrajectoryTracker for Tagoram {
    fn name(&self) -> &str {
        match self.config.antennas.len() {
            2 => "Tagoram (2-antenna)",
            4 => "Tagoram (4-antenna)",
            _ => "Tagoram",
        }
    }

    fn antenna_count(&self) -> usize {
        self.config.antennas.len()
    }

    fn track(&self, reports: &[TagReport]) -> Trail {
        let cfg = &self.config;
        let n_ant = cfg.antennas.len();
        let windows = window_reports(reports, n_ant, cfg.window_s);
        if windows.len() < 2 {
            return Trail::default();
        }

        // Measured per-antenna phase deltas per step.
        let mut deltas: Vec<Vec<Option<f64>>> = Vec::with_capacity(windows.len() - 1);
        let mut times: Vec<f64> = Vec::with_capacity(windows.len() - 1);
        for pair in windows.windows(2) {
            let step: Vec<Option<f64>> = (0..n_ant)
                .map(|a| match (pair[0].phase[a], pair[1].phase[a]) {
                    (Some(p0), Some(p1)) => Some(phase_diff(p1, p0)),
                    _ => None,
                })
                .collect();
            deltas.push(step);
            times.push(pair[1].t);
        }

        let grid = GridBeam::covering(cfg.board_min, cfg.board_max, cfg.cell_m, cfg.beam);
        let k = 4.0 * std::f64::consts::PI / cfg.wavelength_m;
        let antennas = cfg.antennas.clone();
        let points = grid.decode(cfg.start_hint, deltas.len(), cfg.max_step_m, |from, to, step| {
            // DAH likelihood: phase-change consistency over all antennas
            // (3-D ranges; the pen writes on the z = 0 plane).
            let mut s = 0.0;
            for (a, meas) in deltas[step].iter().enumerate() {
                if let Some(m) = meas {
                    let pred = k
                        * (to.with_z(0.0).distance(antennas[a])
                            - from.with_z(0.0).distance(antennas[a]));
                    s += (m - pred).cos();
                }
            }
            s
        });
        let times: Vec<f64> = times.into_iter().take(points.len()).collect();
        Trail::new(times, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::wrap_tau;

    /// Synthesize the clean report stream a tag moving along `path`
    /// (positions per 10 ms) would produce at the rig.
    fn synth_reports(cfg: &TagoramConfig, path: &[Vec2]) -> Vec<TagReport> {
        let k = 4.0 * std::f64::consts::PI / cfg.wavelength_m;
        let mut out = Vec::new();
        for (i, p) in path.iter().enumerate() {
            let t = i as f64 * 0.01;
            let a = i % cfg.antennas.len();
            let phase = wrap_tau(k * p.with_z(0.0).distance(cfg.antennas[a]) + 0.7 * a as f64);
            out.push(TagReport { t, antenna: a, rssi_dbm: -40.0, phase_rad: phase, channel: 24, epc: 1 });
        }
        out
    }

    fn straight_path(from: Vec2, dir: Vec2, speed: f64, n: usize) -> Vec<Vec2> {
        (0..n).map(|i| from + dir * (speed * i as f64 * 0.01)).collect()
    }

    #[test]
    fn four_antenna_tracks_straight_motion() {
        let cfg = TagoramConfig::four_antenna();
        let start = cfg.start_hint;
        let path = straight_path(start, Vec2::new(0.0, 1.0), 0.06, 300);
        let reports = synth_reports(&cfg, &path);
        let trail = Tagoram::new(cfg).track(&reports);
        assert!(!trail.is_empty());
        let net = *trail.points.last().unwrap() - trail.points[0];
        assert!(net.y > 0.10, "must track ~17 cm of downward motion, got {net:?}");
        assert!(net.x.abs() < 0.05, "and stay near the vertical, got {net:?}");
    }

    #[test]
    fn two_antenna_variant_still_tracks_radial_motion() {
        let cfg = TagoramConfig::two_antenna();
        let start = cfg.start_hint;
        let path = straight_path(start, Vec2::new(0.0, 1.0), 0.06, 300);
        let reports = synth_reports(&cfg, &path);
        let trail = Tagoram::new(cfg).track(&reports);
        let net = *trail.points.last().unwrap() - trail.points[0];
        assert!(net.y > 0.08, "2-antenna Tagoram tracks radial motion, got {net:?}");
    }

    #[test]
    fn still_tag_stays_put() {
        let cfg = TagoramConfig::four_antenna();
        let path = vec![cfg.start_hint; 200];
        let reports = synth_reports(&cfg, &path);
        let trail = Tagoram::new(cfg.clone()).track(&reports);
        for p in &trail.points {
            assert!(p.distance(cfg.start_hint) < 0.03, "wandered to {p:?}");
        }
    }

    #[test]
    fn names_reflect_antenna_count() {
        assert_eq!(Tagoram::new(TagoramConfig::two_antenna()).name(), "Tagoram (2-antenna)");
        assert_eq!(Tagoram::new(TagoramConfig::four_antenna()).name(), "Tagoram (4-antenna)");
        assert_eq!(Tagoram::new(TagoramConfig::four_antenna()).antenna_count(), 4);
    }

    #[test]
    fn empty_reports_empty_trail() {
        let trail = Tagoram::new(TagoramConfig::four_antenna()).track(&[]);
        assert!(trail.is_empty());
    }
}
