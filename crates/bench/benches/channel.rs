//! Batched channel-engine throughput: the SoA forward model against
//! the retained per-link paths it replaced, so the speedups are
//! measured, not asserted.
//!
//! Three row families (`scripts/bench.sh --suite channel` regenerates
//! the committed `BENCH_channel.json` and gates the floors):
//!
//! * `channel/emission/…` — building the decoder's Δθ emission table
//!   at paper fidelity (the default board at 2.5 mm, the exact grid
//!   every accuracy trial decodes against) plus the 5 mm rung of the
//!   matrix. `per_link` is the honest pre-batch baseline: one
//!   `expected_dtheta21(grid.center(idx))` per cell, exactly the loop
//!   `EmissionTable::build` used to run. `batch` is the bitwise row
//!   kernel; `batch_f32` is the `F32Tolerance`-tier direct build
//!   (`EmissionTableF32::build_direct`) the fast decode kernel rides.
//! * `channel/link/scalar/…` — many-pose link evaluation on the
//!   legacy cos²β channel: `per_link` calls `ChannelModel::evaluate`
//!   per pose; `batch` freezes the rig once (`RigFactors`) and runs
//!   the bitwise batch kernel over the same poses.
//! * `channel/link/jones/…` — the same pair on the full-polarimetric
//!   channel, where `batch` takes the restructured ≤ 1e-12 kernel
//!   (direct linear amplitudes, shared mirror-leg lengths, frozen
//!   per-rig Jones factors).

use polardraw_bench::harness::Bench;
use polardraw_core::distance::expected_dtheta21;
use polardraw_core::hmm::{EmissionTable, EmissionTableF32, Grid};
use polardraw_core::PolarDrawConfig;
use rf_core::rng::rng_from_seed;
use rf_core::Vec3;
use rf_physics::batch::{BatchOptions, ChannelBatch, PoseBatch, RigFactors};
use rf_physics::{ChannelModel, Polarimetry};

/// The pre-batch emission build, verbatim: one forward-model call per
/// grid cell through the scalar per-cell API.
fn per_link_emission(grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> Vec<f64> {
    let mut values = vec![0.0; grid.len()];
    for (idx, v) in values.iter_mut().enumerate() {
        *v = expected_dtheta21(grid.center(idx), antennas, wavelength_m);
    }
    values
}

/// Deterministic pose cloud in the writing volume (the link-batch
/// workload).
fn pose_cloud(n: usize) -> PoseBatch {
    let mut rng = rng_from_seed(0xC0FFEE);
    let mut poses = PoseBatch::with_capacity(n);
    for _ in 0..n {
        let pos = Vec3::new(
            rng.gen_range(-0.3..0.3),
            rng.gen_range(0.5..1.0),
            rng.gen_range(-0.05..0.05),
        );
        let dipole = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        )
        .normalized()
        .unwrap_or(Vec3::Y);
        poses.push(pos, dipole, rng.gen_range(0.0..5.0));
    }
    poses
}

fn main() {
    let mut bench = Bench::from_args("channel");
    let cfg = PolarDrawConfig::default();
    let lambda = cfg.hmm.wavelength_m;

    // Emission-table build matrix: paper fidelity first (the headline
    // rows the gates track), then the coarser rung.
    for (cell_label, cell_m) in [("cell2.5mm", 0.0025), ("cell5mm", 0.005)] {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        bench.bench(&format!("channel/emission/per_link/{cell_label}"), || {
            per_link_emission(&grid, cfg.antennas, lambda)
        });
        bench.bench(&format!("channel/emission/batch/{cell_label}"), || {
            EmissionTable::build(&grid, cfg.antennas, lambda)
        });
        bench.bench(&format!("channel/emission/batch_f32/{cell_label}"), || {
            EmissionTableF32::build_direct(&grid, cfg.antennas, lambda, 1)
        });
    }

    // Link batches: the simulator's whiteboard rig, 512 poses.
    let poses = pose_cloud(512);
    let scalar_ch = ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.30);
    let mut jones_ch = scalar_ch.clone();
    jones_ch.polarimetry = Polarimetry::Jones;
    for (pol_label, ch) in [("scalar", &scalar_ch), ("jones", &jones_ch)] {
        let rig = RigFactors::freeze(ch).expect("whiteboard rigs have a fixed plan");
        bench.bench(&format!("channel/link/{pol_label}/per_link/poses512"), || {
            let mut out = Vec::with_capacity(poses.len());
            for i in 0..poses.len() {
                out.push(ch.evaluate(0, poses.position(i), poses.dipole(i), poses.t(i)));
            }
            out
        });
        bench.bench(&format!("channel/link/{pol_label}/batch/poses512"), || {
            ChannelBatch::new(&rig, BatchOptions::default()).evaluate(0, &poses)
        });
    }

    {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, 0.0025);
        bench.note(format!(
            "emission workload: grid {}x{} = {} cells at 2.5 mm; board {:?}..{:?}, lambda {:.4} m",
            grid.nx,
            grid.ny,
            grid.len(),
            cfg.board_min,
            cfg.board_max,
            lambda,
        ));
    }

    bench.finish();
}
