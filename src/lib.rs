//! # polardraw-suite — umbrella crate
//!
//! Re-exports the whole PolarDraw reproduction workspace behind one
//! dependency, and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Layering, bottom to top:
//!
//! | crate | role |
//! |---|---|
//! | [`rf_core`] | geometry, angles, complex arithmetic, dB, statistics |
//! | [`rf_physics`] | polarization, antennas, propagation, multipath, channel |
//! | [`rfid_sim`] | EPC Gen2 reader/tag protocol, LLRP reports, tracker trait |
//! | [`pen_sim`] | glyphs, handwriting kinematics, writer styles, scenes |
//! | [`polardraw_core`] | the paper's tracking algorithm (§3) |
//! | [`baselines`] | Tagoram and RF-IDraw re-implementations |
//! | [`recognition`] | Procrustes/DTW template recognition, confusion matrices |
//! | [`experiments`] | end-to-end harness for every paper table and figure |

#![forbid(unsafe_code)]

pub use baselines;
pub use experiments;
pub use pen_sim;
pub use polardraw_core;
pub use recognition;
pub use rf_core;
pub use rf_physics;
pub use rfid_sim;

/// Convenience: run a complete simulate-and-track round trip for a piece
/// of text with default settings. Returns `(ground_truth, recovered)`.
///
/// This is the five-line quickstart the README shows; the examples and
/// the `experiments` crate expose every knob this hides.
pub fn quick_track(text: &str, seed: u64) -> (Vec<rf_core::Vec2>, Vec<rf_core::Vec2>) {
    use rfid_sim::TrajectoryTracker;

    let scene = pen_sim::Scene::default();
    let profile = pen_sim::WriterProfile::natural();
    let session = pen_sim::scene::write_text(&scene, &profile, text, seed);

    let channel = rf_physics::ChannelModel::two_antenna_whiteboard(
        15f64.to_radians(),
        0.56,
        0.30,
    );
    let reader = rfid_sim::Reader::new(channel);
    let poses: Vec<rfid_sim::reader::TagPose> = session
        .poses
        .iter()
        .map(|p| rfid_sim::reader::TagPose { t: p.t, position: p.tip, dipole: p.dipole })
        .collect();
    let reports = reader.inventory(&poses, seed);

    let tracker = polardraw_core::PolarDraw::new(polardraw_core::PolarDrawConfig::default());
    let trail = tracker.track(&reports);
    (session.truth.points, trail.points)
}
