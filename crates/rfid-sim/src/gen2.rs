//! EPC Gen2 inventory-round machinery.
//!
//! A reader inventories tags in rounds: it broadcasts `Query` (which
//! carries the slot-count parameter Q), tags draw a random slot in
//! `[0, 2^Q)`, and the reader steps through slots with `QueryRep`. A tag
//! whose counter hits zero backscatters an RN16; the reader ACKs and the
//! tag sends its EPC (plus CRC). Phase/RSSI measurements ride on the EPC
//! backscatter.
//!
//! PolarDraw tracks a *single* tag, so the interesting outputs are the
//! per-read latency (it sets the ~100 Hz report rate the paper quotes)
//! and the Q-algorithm dynamics that keep the round short.

use crate::modulation::ModulationScheme;
use rf_core::rng::Rng64;

/// Reader-to-tag (downlink) data rate, bits/s, for typical Tari = 12.5 µs
/// PIE encoding (average symbol ≈ 1.5 Tari).
pub const DOWNLINK_BPS: f64 = 53_333.0;

/// Message sizes, bits.
pub mod frame {
    /// `Query` command length.
    pub const QUERY_BITS: u32 = 22;
    /// `QueryRep` command length.
    pub const QUERY_REP_BITS: u32 = 4;
    /// `ACK` command length.
    pub const ACK_BITS: u32 = 18;
    /// RN16 reply (16 bits + preamble ≈ 6).
    pub const RN16_BITS: u32 = 22;
    /// EPC reply: PC (16) + EPC-96 + CRC16 + preamble ≈ 134.
    pub const EPC_BITS: u32 = 134;
}

/// Link turnaround times, seconds (T1/T2 of the Gen2 spec, order 50 µs).
pub const T1_S: f64 = 60e-6;
/// Reader-to-tag turnaround after a tag reply.
pub const T2_S: f64 = 50e-6;

/// Timing and state of the Gen2 MAC for a single-reader session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gen2Config {
    /// Uplink modulation.
    pub scheme: ModulationScheme,
    /// Initial/maximum Q exponent. With one tag, Q quickly anneals to 0.
    pub q_init: u32,
    /// Extra per-round overhead (reader processing, CW settle), seconds.
    pub round_overhead_s: f64,
}

impl Default for Gen2Config {
    fn default() -> Self {
        Gen2Config {
            scheme: ModulationScheme::Miller4,
            q_init: 0,
            round_overhead_s: 4.0e-3,
        }
    }
}

impl Gen2Config {
    /// Duration of one successful single-tag inventory round, seconds:
    /// Query → RN16 → ACK → EPC plus turnarounds and overhead.
    pub fn successful_round_duration(&self) -> f64 {
        let down = f64::from(frame::QUERY_BITS + frame::ACK_BITS) / DOWNLINK_BPS;
        let up = self.scheme.uplink_duration(frame::RN16_BITS)
            + self.scheme.uplink_duration(frame::EPC_BITS);
        down + up + 2.0 * T1_S + 2.0 * T2_S + self.round_overhead_s
    }

    /// Duration of a round in which the tag failed to respond (no RN16:
    /// the reader times out after T1 plus a short wait).
    pub fn empty_round_duration(&self) -> f64 {
        let down = f64::from(frame::QUERY_BITS) / DOWNLINK_BPS;
        down + T1_S + 3.0 * T2_S + self.round_overhead_s
    }

    /// Steady-state read rate for one always-responding tag, Hz.
    pub fn read_rate_hz(&self) -> f64 {
        1.0 / self.successful_round_duration()
    }
}

/// The Q-algorithm slot-count controller (Gen2 Annex D).
///
/// Tracked here for protocol completeness: with a single tag the
/// controller converges to Q = 0 and stays there, which is why the
/// single-tag read rate equals the round rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QAlgorithm {
    qfp: f64,
    /// Weight C in `[0.1, 0.5]`.
    pub c: f64,
}

impl QAlgorithm {
    /// Start at the configured initial Q.
    pub fn new(q_init: u32) -> QAlgorithm {
        QAlgorithm { qfp: f64::from(q_init), c: 0.3 }
    }

    /// Current integer Q.
    pub fn q(&self) -> u32 {
        self.qfp.round() as u32
    }

    /// Update after a slot outcome.
    pub fn update(&mut self, outcome: SlotOutcome) {
        match outcome {
            SlotOutcome::Empty => self.qfp = (self.qfp - self.c).max(0.0),
            SlotOutcome::Single => {}
            SlotOutcome::Collision => self.qfp = (self.qfp + self.c).min(15.0),
        }
    }
}

/// What happened in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied (successful read).
    Single,
    /// Multiple tags collided.
    Collision,
}

/// Simulate the slot outcome for `n_tags` tags drawing uniformly from
/// `2^q` slots and count how many picked slot 0.
pub fn slot_outcome(rng: &mut Rng64, n_tags: usize, q: u32) -> SlotOutcome {
    let slots = 1usize << q.min(15);
    let hits = (0..n_tags).filter(|_| rng.gen_index(slots) == 0).count();
    match hits {
        0 => SlotOutcome::Empty,
        1 => SlotOutcome::Single,
        _ => SlotOutcome::Collision,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::rng::rng_from_seed;

    #[test]
    fn single_tag_read_rate_is_around_100hz() {
        // The paper: "measure the phase and amplitude of an RFID tag at
        // a rate of ca. 100 Hz". Default config must land in that regime.
        let rate = Gen2Config::default().read_rate_hz();
        assert!((80.0..220.0).contains(&rate), "rate = {rate} Hz");
    }

    #[test]
    fn fm0_reads_faster_than_miller8() {
        let fm0 = Gen2Config { scheme: ModulationScheme::Fm0, ..Gen2Config::default() };
        let m8 = Gen2Config { scheme: ModulationScheme::Miller8, ..Gen2Config::default() };
        assert!(fm0.read_rate_hz() > m8.read_rate_hz());
    }

    #[test]
    fn empty_rounds_are_shorter_than_successful_ones() {
        let c = Gen2Config::default();
        assert!(c.empty_round_duration() < c.successful_round_duration());
    }

    #[test]
    fn q_algorithm_anneals_to_zero_for_one_tag() {
        let mut q = QAlgorithm::new(4);
        let mut rng = rng_from_seed(2);
        for _ in 0..200 {
            let outcome = slot_outcome(&mut rng, 1, q.q());
            q.update(outcome);
        }
        assert_eq!(q.q(), 0, "single tag: Q must anneal to 0");
    }

    #[test]
    fn q_algorithm_rises_under_collisions() {
        let mut q = QAlgorithm::new(0);
        for _ in 0..10 {
            q.update(SlotOutcome::Collision);
        }
        assert!(q.q() >= 2);
    }

    #[test]
    fn q_algorithm_saturates() {
        let mut q = QAlgorithm::new(15);
        for _ in 0..100 {
            q.update(SlotOutcome::Collision);
        }
        assert!(q.q() <= 15);
        let mut q = QAlgorithm::new(0);
        for _ in 0..100 {
            q.update(SlotOutcome::Empty);
        }
        assert_eq!(q.q(), 0);
    }

    #[test]
    fn slot_outcome_with_zero_tags_is_empty() {
        let mut rng = rng_from_seed(3);
        assert_eq!(slot_outcome(&mut rng, 0, 0), SlotOutcome::Empty);
    }

    #[test]
    fn slot_outcome_one_tag_q0_always_single() {
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            assert_eq!(slot_outcome(&mut rng, 1, 0), SlotOutcome::Single);
        }
    }

    #[test]
    fn many_tags_q0_always_collide() {
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            assert_eq!(slot_outcome(&mut rng, 5, 0), SlotOutcome::Collision);
        }
    }
}
