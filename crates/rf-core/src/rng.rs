//! Deterministic randomness plumbing.
//!
//! Every experiment in the workspace is reproducible from a single `u64`
//! seed. Sub-systems (channel noise, Gen2 slot selection, pen jitter,
//! per-trial variation) each derive an independent stream from the master
//! seed with [`derive_seed`], so adding a consumer in one module never
//! perturbs the stream seen by another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive a child seed from a parent seed and a domain label.
///
/// Uses the SplitMix64 finalizer over the parent seed mixed with an FNV-1a
/// hash of the label — cheap, stable across platforms/releases, and good
/// enough to decorrelate streams (this is not cryptography).
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(parent ^ h)
}

/// Derive a child seed from a parent seed and an index (per-trial streams).
pub fn derive_seed_indexed(parent: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(parent, label).wrapping_add(splitmix64(index)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Construct the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draw from a zero-mean Gaussian via Box–Muller (two uniforms).
///
/// We carry our own implementation instead of `rand_distr` to keep the
/// dependency set to the approved list.
pub fn gaussian<R: Rng>(rng: &mut R, std_dev: f64) -> f64 {
    // Box–Muller; guard u1 away from 0 so ln() is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * std_dev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable() {
        // Regression pin: changing these would silently change every
        // experiment in the workspace.
        assert_eq!(derive_seed(42, "channel"), derive_seed(42, "channel"));
        assert_ne!(derive_seed(42, "channel"), derive_seed(42, "pen"));
        assert_ne!(derive_seed(42, "channel"), derive_seed(43, "channel"));
    }

    #[test]
    fn indexed_seeds_differ_per_index() {
        let a = derive_seed_indexed(7, "trial", 0);
        let b = derive_seed_indexed(7, "trial", 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed_indexed(7, "trial", 0));
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut rng = rng_from_seed(1);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
