//! Descriptive statistics for the evaluation harness.
//!
//! The paper reports medians, 90th-percentile errors, CDFs (Fig. 19) and
//! accuracies; these helpers compute them deterministically (no interior
//! mutability, stable sorting of NaN-free data).

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance; `None` for fewer than two samples.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Percentile by linear interpolation between closest ranks,
/// `p` in `[0, 100]`. `None` for empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Empirical CDF evaluated at each sorted sample: returns
/// `(value, P[X ≤ value])` pairs suitable for plotting (Fig. 19).
pub fn empirical_cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of booleans that are `true` (recognition accuracy).
pub fn accuracy(outcomes: &[bool]) -> Option<f64> {
    if outcomes.is_empty() {
        None
    } else {
        Some(outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64)
    }
}

/// Root-mean-square of a slice; `None` for empty input.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

/// Simple moving average with the given window length (≥ 1); the first
/// `window − 1` outputs average over the available prefix. Returns the
/// input unchanged for `window ≤ 1`.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 {
        return xs.to_vec();
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
        if i >= window {
            sum -= xs[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((variance(&xs).unwrap() - 4.571428).abs() < 1e-5);
    }

    #[test]
    fn empty_input_yields_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(accuracy(&[]), None);
        assert_eq!(rms(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        assert_eq!(percentile(&[1.0], -1.0), None);
        assert_eq!(percentile(&[1.0], 100.1), None);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = empirical_cdf(&xs);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn accuracy_counts_true_fraction() {
        assert_eq!(accuracy(&[true, true, false, true]), Some(0.75));
    }

    #[test]
    fn moving_average_smooths_constant_to_itself() {
        let xs = [2.0; 10];
        assert_eq!(moving_average(&xs, 4), xs.to_vec());
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let xs = [1.0, 5.0, -2.0];
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
        assert_eq!(moving_average(&xs, 0), xs.to_vec());
    }

    #[test]
    fn moving_average_prefix_uses_partial_window() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ma = moving_average(&xs, 2);
        assert_eq!(ma, vec![1.0, 1.5, 2.5, 3.5]);
    }
}
