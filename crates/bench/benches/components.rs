//! Component micro-benchmarks: the physics substrate and the stages of
//! the PolarDraw pipeline. Backs the §3.5 real-time claim: one 50 ms
//! window must be processable in far less than 50 ms.

use polardraw_bench::harness::Bench;
use polardraw_bench::letter_reports;
use polardraw_core::hmm::{viterbi, Grid, HmmConfig, StepObservation};
use polardraw_core::preprocess::{preprocess, PreprocessConfig};
use rf_core::{Vec2, Vec3};
use rf_physics::ChannelModel;

fn main() {
    let mut bench = Bench::from_args("components");

    let ch = ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.30);
    let dipole = Vec3::new(0.1, 0.95, 0.3).normalized().unwrap();
    bench.bench("channel/evaluate_one_link", || {
        ch.evaluate(0, Vec3::new(0.0, 0.7, 0.0), dipole, 0.1)
    });

    // The full-polarimetric path on the same rig: what `--channel
    // jones` pays per link relative to the scalar fast path above.
    let mut jones_ch = ch.clone();
    jones_ch.polarimetry = rf_physics::Polarimetry::Jones;
    bench.bench("channel/evaluate_one_link_jones", || {
        jones_ch.evaluate(0, Vec3::new(0.0, 0.7, 0.0), dipole, 0.1)
    });

    let cfg = rfid_sim::gen2::Gen2Config::default();
    bench.bench("gen2/round_timing", || {
        cfg.successful_round_duration() + cfg.empty_round_duration()
    });

    let reports = letter_reports('W', 7);
    let pre_cfg = PreprocessConfig::default();
    bench.bench("polardraw/preprocess_letter_stream", || preprocess(&reports, &pre_cfg));

    // Fault-layer overhead: what the injector costs, and what the
    // hardened preprocess pays on a worst-case (reordered + duplicated)
    // stream versus the clean borrow path above.
    let injector = rfid_sim::faults::FaultInjector::new(
        rfid_sim::faults::FaultPlan::at_intensity(0.5),
        11,
    );
    bench.bench("faults/inject_letter_stream", || injector.inject(&reports));
    let adversarial = injector.inject(&reports);
    bench.bench("polardraw/preprocess_adversarial_stream", || {
        preprocess(&adversarial, &pre_cfg)
    });

    let grid = Grid::covering(Vec2::new(-0.3, 0.5), Vec2::new(0.3, 0.9), 0.0025);
    let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
    let steps: Vec<StepObservation> = (0..100)
        .map(|i| StepObservation {
            region: polardraw_core::distance::FeasibleRegion {
                min_dist: 0.002,
                max_dist: 0.01,
            },
            direction: Some(Vec2::from_angle(i as f64 * 0.1)),
            dtheta21: Some(0.3),
            target_dist: 0.004,
        })
        .collect();
    bench.bench("polardraw/viterbi_100_steps", || {
        viterbi(&grid, rig, Vec2::new(0.0, 0.7), &steps, &HmmConfig::default())
    });

    bench.bench("rfid/inventory_one_letter_session", || letter_reports('I', 9));

    bench.finish();
}
