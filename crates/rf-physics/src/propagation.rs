//! Path-loss models.
//!
//! At whiteboard ranges (0.2–2.5 m) the line-of-sight path dominates and
//! free-space loss is an excellent model; the log-distance generalization
//! is kept for the longer-range sweeps (Table 5 / Fig. 22 go out to
//! 140 cm and the feasibility rig sits at 2.5 m).

/// One-way free-space *amplitude* factor `λ / (4π d)`.
///
/// Squaring gives the Friis power ratio for isotropic ends; antenna gains
/// are applied separately by the channel model.
pub fn free_space_amplitude(distance_m: f64, wavelength_m: f64) -> f64 {
    if distance_m <= 0.0 {
        return 0.0;
    }
    wavelength_m / (4.0 * std::f64::consts::PI * distance_m)
}

/// One-way free-space path loss in dB (positive number).
pub fn free_space_loss_db(distance_m: f64, wavelength_m: f64) -> f64 {
    let a = free_space_amplitude(distance_m, wavelength_m);
    if a <= 0.0 {
        f64::INFINITY
    } else {
        -20.0 * a.log10()
    }
}

/// Log-distance path loss in dB relative to a 1 m reference:
/// `PL(d) = PL(d₀) + 10·n·log10(d/d₀)` with `d₀ = 1 m`.
pub fn log_distance_loss_db(distance_m: f64, wavelength_m: f64, exponent: f64) -> f64 {
    if distance_m <= 0.0 {
        return f64::INFINITY;
    }
    free_space_loss_db(1.0, wavelength_m) + 10.0 * exponent * distance_m.log10()
}

/// The one-way *amplitude* factor corresponding to
/// [`log_distance_loss_db`].
pub fn log_distance_amplitude(distance_m: f64, wavelength_m: f64, exponent: f64) -> f64 {
    let loss = log_distance_loss_db(distance_m, wavelength_m, exponent);
    if loss.is_infinite() {
        0.0
    } else {
        10f64.powf(-loss / 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.3276; // 915 MHz

    #[test]
    fn friis_at_one_metre() {
        // λ/(4π·1) ≈ 0.02607 → ~31.7 dB one-way loss at 915 MHz.
        let db = free_space_loss_db(1.0, LAMBDA);
        assert!((db - 31.67).abs() < 0.05, "got {db}");
    }

    #[test]
    fn amplitude_halves_when_distance_doubles() {
        let a1 = free_space_amplitude(1.0, LAMBDA);
        let a2 = free_space_amplitude(2.0, LAMBDA);
        assert!((a1 / a2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_distance_with_exponent_two_equals_free_space() {
        for d in [0.3, 1.0, 2.5] {
            let fs = free_space_loss_db(d, LAMBDA);
            let ld = log_distance_loss_db(d, LAMBDA, 2.0);
            assert!((fs - ld).abs() < 1e-9, "d = {d}");
        }
    }

    #[test]
    fn larger_exponent_means_more_loss_beyond_reference() {
        let n2 = log_distance_loss_db(3.0, LAMBDA, 2.0);
        let n3 = log_distance_loss_db(3.0, LAMBDA, 3.0);
        assert!(n3 > n2);
        // ... and *less* loss inside the reference distance.
        let m2 = log_distance_loss_db(0.5, LAMBDA, 2.0);
        let m3 = log_distance_loss_db(0.5, LAMBDA, 3.0);
        assert!(m3 < m2);
    }

    #[test]
    fn degenerate_distances() {
        assert_eq!(free_space_amplitude(0.0, LAMBDA), 0.0);
        assert_eq!(free_space_loss_db(0.0, LAMBDA), f64::INFINITY);
        assert_eq!(log_distance_amplitude(-1.0, LAMBDA, 2.0), 0.0);
    }

    #[test]
    fn amplitude_and_db_agree() {
        let d = 1.7;
        let amp = log_distance_amplitude(d, LAMBDA, 2.3);
        let db = log_distance_loss_db(d, LAMBDA, 2.3);
        assert!((-20.0 * amp.log10() - db).abs() < 1e-9);
    }
}
