//! Batched channel evaluation: rig-frozen factors + SoA kernels.
//!
//! Every caller of [`ChannelModel::evaluate`] used to walk the full
//! forward model one link at a time, recomputing per-rig constants —
//! Fresnel/Jones state vectors, antenna gain ratios, mirrored antenna
//! images, depolarization rotations, the wavelength, the 1 m path-loss
//! reference — on every call. For a *fixed* rig those factors never
//! change; only the tag pose (and, for a moving bystander, time) does.
//!
//! [`RigFactors::freeze`] hoists everything pose-independent out of the
//! per-link math once, and [`ChannelBatch`] evaluates many poses per
//! call over structure-of-arrays buffers ([`PoseBatch`]) with chunked
//! intra-batch parallelism mirroring the decoder's `KernelOptions`
//! design (`polardraw-core`).
//!
//! # Precision tiers
//!
//! * **Scalar links are bitwise.** [`RigFactors::evaluate`] and the
//!   scalar batch path replicate [`ChannelModel::evaluate`] operation
//!   for operation — hoisting a value computed from the same inputs is
//!   bit-neutral, so golden traces and checkpoint formats are
//!   untouched. The single-link path is bitwise for *both*
//!   polarimetries (the simulator's report stream rides on it).
//! * **Jones batches are ≤ 1e-12 per link.** The batch Jones kernel
//!   ([`BatchPrecision::F64Exact`]) restructures the per-path algebra —
//!   direct linear amplitudes instead of the dB round-trip, reciprocal
//!   path lengths reused across mirror legs, purely-real field states
//!   short-circuiting the imaginary bounce — which reassociates
//!   floating point at the 1e-15 level. `tests/channel_batch.rs` pins
//!   the 1e-12 contract.
//! * **[`BatchPrecision::F32Tolerance`]** selects the `f32` SoA grid
//!   kernels ([`distances_row_f32`]) that back the direct `f32`
//!   emission-table build in `polardraw-core`; that tier is gated by a
//!   quantitative oracle (per-cell emission deltas + reduced-config
//!   letter parity), not a bitwise contract. Per-link observation
//!   batches are transcendental-bound (sin/cos/log per path), where
//!   narrowing the scalar type buys nothing without cross-pose SIMD, so
//!   link batches evaluate in `f64` under either tier — the tier choice
//!   is about the grid kernels.

use crate::antenna::{Antenna, Polarization};
use crate::channel::{ChannelModel, LinkObservation, Polarimetry, TagPolarization};
use crate::multipath::{fresnel_rp, fresnel_rs, Bystander, Reflector, Surface};
use crate::polarization::{transverse_field, Jones, JonesVector, PolBasis, PolState};
use crate::propagation::free_space_loss_db;
use crate::spectrum::ChannelPlan;
use rf_core::{db_to_ratio, wrap_tau, Complex, Vec3};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, TAU};

/// Numeric tier of the batched kernels (mirrors the decoder's
/// `KernelPrecision`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPrecision {
    /// `f64` throughout: scalar links bitwise vs [`ChannelModel`],
    /// Jones links within 1e-12 per link. The default.
    #[default]
    F64Exact,
    /// The tolerance tier: grid kernels run in `f32`
    /// ([`distances_row_f32`]); link batches still evaluate in `f64`
    /// (see the module docs). Gated by the emission-delta/letter-parity
    /// oracle in `tests/channel_batch.rs`, not a bitwise contract.
    F32Tolerance,
}

/// Options for one [`ChannelBatch`]: precision tier + intra-batch
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Numeric tier.
    pub precision: BatchPrecision,
    /// Worker ceiling for chunked intra-batch parallelism. Poses are
    /// split into contiguous `rf_core::chunk_bounds` chunks, so the
    /// result is bit-identical at any thread count within a tier.
    pub threads: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions { precision: BatchPrecision::F64Exact, threads: 1 }
    }
}

/// Structure-of-arrays pose buffer: positions, dipole orientations and
/// timestamps of many tag poses, stored column-wise so batch kernels
/// stream each component contiguously.
#[derive(Debug, Clone, Default)]
pub struct PoseBatch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    ux: Vec<f64>,
    uy: Vec<f64>,
    uz: Vec<f64>,
    ts: Vec<f64>,
}

impl PoseBatch {
    /// An empty batch.
    pub fn new() -> PoseBatch {
        PoseBatch::default()
    }

    /// An empty batch with room for `n` poses.
    pub fn with_capacity(n: usize) -> PoseBatch {
        PoseBatch {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            zs: Vec::with_capacity(n),
            ux: Vec::with_capacity(n),
            uy: Vec::with_capacity(n),
            uz: Vec::with_capacity(n),
            ts: Vec::with_capacity(n),
        }
    }

    /// Append one pose.
    pub fn push(&mut self, position: Vec3, dipole: Vec3, t: f64) {
        self.xs.push(position.x);
        self.ys.push(position.y);
        self.zs.push(position.z);
        self.ux.push(dipole.x);
        self.uy.push(dipole.y);
        self.uz.push(dipole.z);
        self.ts.push(t);
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the batch holds no poses.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of pose `i`.
    pub fn position(&self, i: usize) -> Vec3 {
        Vec3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// Dipole orientation of pose `i`.
    pub fn dipole(&self, i: usize) -> Vec3 {
        Vec3::new(self.ux[i], self.uy[i], self.uz[i])
    }

    /// Timestamp of pose `i`.
    pub fn t(&self, i: usize) -> f64 {
        self.ts[i]
    }

    /// Drop all poses, keeping the buffers.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.ux.clear();
        self.uy.clear();
        self.uz.clear();
        self.ts.clear();
    }
}

/// The frame an antenna's radiated Jones state lives in — the frozen
/// half of [`Antenna::jones_along`] (the state itself never depends on
/// the ray, only the frame construction rule does).
#[derive(Debug, Clone, Copy)]
enum FrozenFrame {
    /// `PolBasis::from_reference(axis, dir)` — linear and general Jones
    /// patterns.
    Reference(Vec3),
    /// `PolBasis::any(dir)` — circular patterns.
    Any,
}

/// One antenna with its pose-independent factors hoisted.
#[derive(Debug, Clone)]
struct FrozenAntenna {
    ant: Antenna,
    /// `db_to_ratio(gain_dbi)` — the boresight power ratio the pattern
    /// scales (bit-identical reuse inside the gain expression).
    gain_ratio: f64,
    /// `gain_ratio.sqrt()` — the restructured kernel's amplitude gain
    /// for `pattern_exponent == 2` collapses to `sqrt_gain · cos θ`.
    sqrt_gain: f64,
    /// Whether `pattern_exponent == 2.0` exactly (the default panels),
    /// enabling the `powf`-free pattern in the restructured kernel.
    pattern_is_square: bool,
    /// `Antenna::linear_axis()`, frozen.
    linear_axis: Option<Vec3>,
    /// Frame construction rule + frozen radiated state — the
    /// `PolState::jones()` trig paid once per rig instead of per link.
    frame: FrozenFrame,
    jv: JonesVector,
    /// Whether `jv` is purely real (linear states): the imaginary field
    /// leg of every Empirical bounce is identically zero and the
    /// restructured kernel skips it.
    jv_is_real: bool,
    /// This antenna's image across each reflector, in reflector order —
    /// what `Reflector::path(ant.position, ·)` re-mirrors per link.
    mirrored: Vec<Vec3>,
}

/// One reflector with its depolarization rotation hoisted.
#[derive(Debug, Clone)]
struct FrozenReflector {
    refl: Reflector,
    /// `sin`/`cos` of the depolarization angle —
    /// `Reflector::reflect_polarization` pays this trig per bounce.
    depol_sin: f64,
    depol_cos: f64,
}

/// Everything about a [`ChannelModel`] that does not depend on the tag
/// pose, precomputed once. Freezing requires a time-invariant carrier
/// ([`ChannelPlan::Fixed`]); hopping plans change wavelength per call
/// and must keep using [`ChannelModel::evaluate`].
///
/// A moving bystander is *not* an obstacle: only its position depends
/// on time, and that is resolved per call.
#[derive(Debug, Clone)]
pub struct RigFactors {
    tx_power_dbm: f64,
    tag_sensitivity_dbm: f64,
    ple: f64,
    /// `-ple / 2` — the distance exponent of the one-way amplitude.
    neg_half_ple: f64,
    /// Whether `ple == 2.0` exactly (free-space), enabling the
    /// `powf`-free `1/d` amplitude in the restructured kernel.
    ple_is_two: bool,
    /// `db_to_ratio(tag_gain_dbi).sqrt()`.
    g_tag: f64,
    /// `db_to_ratio(-backscatter_loss_db).sqrt()`.
    m: f64,
    lambda: f64,
    /// `free_space_loss_db(1.0, lambda)` — the 1 m reference of the
    /// log-distance model (bit-identical reuse).
    fs_ref_db: f64,
    /// `10^(-fs_ref_db / 20)` — the same reference as a linear 1 m
    /// amplitude, for the restructured kernel's `amp_1m · d^(-n/2)`.
    amp_1m: f64,
    /// `-TAU / lambda` — phase per metre of one-way path.
    phase_k: f64,
    cable_phase_rad: Vec<f64>,
    polarimetry: Polarimetry,
    tag: TagPolarization,
    ants: Vec<FrozenAntenna>,
    refls: Vec<FrozenReflector>,
    /// The bystander plus hoisted `sin`/`cos` of its depolarization.
    bystander: Option<(Bystander, f64, f64)>,
}

impl RigFactors {
    /// Freeze a model's pose-independent factors. `None` when the plan
    /// hops frequencies (wavelength is then a function of time and
    /// nothing wavelength-derived can be hoisted).
    pub fn freeze(model: &ChannelModel) -> Option<RigFactors> {
        if !matches!(model.plan, ChannelPlan::Fixed(_)) {
            return None;
        }
        let lambda = model.plan.wavelength_at(0.0);
        let fs_ref_db = free_space_loss_db(1.0, lambda);
        let refls: Vec<FrozenReflector> = model
            .reflectors
            .iter()
            .map(|refl| {
                let (depol_sin, depol_cos) = refl.depolarization.sin_cos();
                FrozenReflector { refl: refl.clone(), depol_sin, depol_cos }
            })
            .collect();
        let ants = model
            .antennas
            .iter()
            .map(|ant| {
                let gain_ratio = db_to_ratio(ant.gain_dbi);
                let (frame, jv) = match ant.polarization {
                    Polarization::Linear(axis) => (FrozenFrame::Reference(axis), JonesVector::H),
                    Polarization::Circular => (
                        FrozenFrame::Any,
                        PolState::Circular { right_handed: true }.jones(),
                    ),
                    Polarization::Jones { axis, state } => {
                        (FrozenFrame::Reference(axis), state.jones())
                    }
                };
                FrozenAntenna {
                    ant: *ant,
                    gain_ratio,
                    sqrt_gain: gain_ratio.sqrt(),
                    pattern_is_square: ant.pattern_exponent == 2.0,
                    linear_axis: ant.linear_axis(),
                    frame,
                    jv,
                    jv_is_real: jv.h.im == 0.0 && jv.v.im == 0.0,
                    mirrored: refls.iter().map(|fr| fr.refl.mirror(ant.position)).collect(),
                }
            })
            .collect();
        let bystander = model.bystander.as_ref().map(|by| {
            let (s, c) = by.depolarization.sin_cos();
            (by.clone(), s, c)
        });
        Some(RigFactors {
            tx_power_dbm: model.tx_power_dbm,
            tag_sensitivity_dbm: model.tag_sensitivity_dbm,
            ple: model.path_loss_exponent,
            neg_half_ple: -model.path_loss_exponent * 0.5,
            ple_is_two: model.path_loss_exponent == 2.0,
            g_tag: db_to_ratio(model.tag_gain_dbi).sqrt(),
            m: db_to_ratio(-model.backscatter_loss_db).sqrt(),
            lambda,
            fs_ref_db,
            amp_1m: 10f64.powf(-fs_ref_db / 20.0),
            phase_k: -TAU / lambda,
            cable_phase_rad: model.cable_phase_rad.clone(),
            polarimetry: model.polarimetry,
            tag: model.tag,
            ants,
            refls,
            bystander,
        })
    }

    /// Number of antennas in the frozen rig.
    pub fn antenna_count(&self) -> usize {
        self.ants.len()
    }

    /// The frozen carrier wavelength, metres.
    pub fn wavelength_m(&self) -> f64 {
        self.lambda
    }

    /// Evaluate a single link — **bitwise identical** to
    /// [`ChannelModel::evaluate`] on the model this was frozen from,
    /// for both polarimetries and both tag modes. Every hoisted factor
    /// is the same value (same bits) the per-link path recomputes, and
    /// the op sequence around it is unchanged, so this is the drop-in
    /// the simulator's report generation uses without disturbing golden
    /// traces.
    pub fn evaluate(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        match self.tag {
            TagPolarization::Dipole => self.evaluate_oriented(antenna_idx, tag_pos, dipole, t),
            TagPolarization::Reconfigurable => {
                let u = dipole.normalized().unwrap_or(Vec3::Z);
                let primary = self.evaluate_oriented(antenna_idx, tag_pos, u, t);
                let alt = self.evaluate_oriented(antenna_idx, tag_pos, orthogonal_dipole(u), t);
                if alt.forward_power_dbm > primary.forward_power_dbm {
                    alt
                } else {
                    primary
                }
            }
        }
    }

    fn evaluate_oriented(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        match self.polarimetry {
            Polarimetry::Scalar => self.evaluate_scalar(antenna_idx, tag_pos, dipole, t),
            Polarimetry::Jones => self.evaluate_jones(antenna_idx, tag_pos, dipole, t),
        }
    }

    // ---- bitwise per-link kernels (hoisted constants only) ----

    /// `Antenna::amplitude_gain_towards` with the dB→ratio conversion
    /// hoisted (same bits).
    fn amp_gain(&self, fa: &FrozenAntenna, target: Vec3) -> f64 {
        let dir = match (target - fa.ant.position).normalized() {
            Some(d) => d,
            None => return 0.0,
        };
        let cos_theta = fa.ant.boresight.dot(dir);
        if cos_theta <= 0.0 {
            return 0.0;
        }
        let pattern = cos_theta.powf(fa.ant.pattern_exponent);
        (fa.gain_ratio * pattern).sqrt()
    }

    /// `log_distance_amplitude` with the 1 m free-space reference
    /// hoisted (same bits).
    fn log_dist_amp(&self, distance_m: f64) -> f64 {
        let loss = if distance_m <= 0.0 {
            f64::INFINITY
        } else {
            self.fs_ref_db + 10.0 * self.ple * distance_m.log10()
        };
        if loss.is_infinite() {
            0.0
        } else {
            10f64.powf(-loss / 20.0)
        }
    }

    /// `Antenna::jones_along` with the radiated state frozen.
    fn frozen_jones_along(&self, fa: &FrozenAntenna, dir: Vec3) -> Option<(PolBasis, JonesVector)> {
        match fa.frame {
            FrozenFrame::Reference(axis) => Some((PolBasis::from_reference(axis, dir)?, fa.jv)),
            FrozenFrame::Any => Some((PolBasis::any(dir), fa.jv)),
        }
    }

    fn evaluate_scalar(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        let fa = &self.ants[antenna_idx];
        let ant = &fa.ant;
        let u = dipole.normalized().unwrap_or(Vec3::Z);

        let mut f = Complex::ZERO;

        let d_los = ant.position.distance(tag_pos);
        let los_amp = self.amp_gain(fa, tag_pos) * self.g_tag * self.log_dist_amp(d_los);
        let los_coupling = ant.polarization_coupling(tag_pos, u);
        f += Complex::from_polar(los_amp * los_coupling, -TAU * d_los / self.lambda);

        for (ri, fr) in self.refls.iter().enumerate() {
            if let Some(term) = self.reflector_term(fa, fr, ri, tag_pos, u) {
                f += term;
            }
        }

        if let Some((by, s, c)) = &self.bystander {
            if let Some(term) = self.bystander_term(fa, by, *s, *c, tag_pos, u, t) {
                f += term;
            }
        }

        self.observe(f, antenna_idx, ant.mismatch_angle(tag_pos, u))
    }

    fn evaluate_jones(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        let fa = &self.ants[antenna_idx];
        let ant = &fa.ant;
        let u = dipole.normalized().unwrap_or(Vec3::Z);

        let mut f = Complex::ZERO;

        let d_los = ant.position.distance(tag_pos);
        let los_amp = self.amp_gain(fa, tag_pos) * self.g_tag * self.log_dist_amp(d_los);
        if let Some((basis, jv)) =
            (tag_pos - ant.position).normalized().and_then(|dir| self.frozen_jones_along(fa, dir))
        {
            f += jv.couple(&basis, u) * Complex::from_polar(los_amp, -TAU * d_los / self.lambda);
        }

        for (ri, fr) in self.refls.iter().enumerate() {
            if let Some(term) = self.jones_reflector_term(fa, fr, ri, tag_pos, u) {
                f += term;
            }
        }

        if let Some((by, s, c)) = &self.bystander {
            if let Some(term) = self.jones_bystander_term(fa, by, *s, *c, tag_pos, u, t) {
                f += term;
            }
        }

        self.observe(f, antenna_idx, ant.mismatch_angle(tag_pos, u))
    }

    /// `Reflector::reflect_polarization` with its depolarization trig
    /// hoisted (same bits given the same `sin`/`cos`).
    fn reflect_sc(fr: &FrozenReflector, e: Vec3, k_out: Vec3) -> Vec3 {
        rotate_sc(fr.refl.mirror_dir(e), k_out, fr.depol_sin, fr.depol_cos) * fr.refl.reflectivity
    }

    fn reflector_term(
        &self,
        fa: &FrozenAntenna,
        fr: &FrozenReflector,
        ri: usize,
        tag_pos: Vec3,
        u: Vec3,
    ) -> Option<Complex> {
        // `Reflector::path(ant.position, tag_pos)` with the antenna's
        // image frozen.
        let delta = tag_pos - fa.mirrored[ri];
        let len = delta.norm();
        let arrive_dir = delta.normalized().unwrap_or(Vec3::Z);
        let image = fr.refl.mirror(tag_pos);
        let emit_dir = (image - fa.ant.position).normalized()?;
        let e0 = match fa.linear_axis {
            Some(axis) => transverse_field(axis, emit_dir)?,
            None => transverse_field(Vec3::X, emit_dir)? * FRAC_1_SQRT_2,
        };
        let e1 = Self::reflect_sc(fr, e0, arrive_dir);
        let coupling = e1.dot(u);
        let amp = self.amp_gain(fa, image) * self.g_tag * self.log_dist_amp(len);
        Some(Complex::from_polar(amp * coupling, -TAU * len / self.lambda))
    }

    fn jones_reflector_term(
        &self,
        fa: &FrozenAntenna,
        fr: &FrozenReflector,
        ri: usize,
        tag_pos: Vec3,
        u: Vec3,
    ) -> Option<Complex> {
        let delta = tag_pos - fa.mirrored[ri];
        let len = delta.norm();
        let arrive_dir = delta.normalized().unwrap_or(Vec3::Z);
        let image = fr.refl.mirror(tag_pos);
        let emit_dir = (image - fa.ant.position).normalized()?;
        let (emission_basis, jv) = self.frozen_jones_along(fa, emit_dir)?;
        let coupling = match fr.refl.surface {
            Surface::Empirical => {
                let (re, im) = jv.field(&emission_basis);
                let re_out = Self::reflect_sc(fr, re, arrive_dir);
                let im_out = Self::reflect_sc(fr, im, arrive_dir);
                Complex::new(re_out.dot(u), im_out.dot(u))
            }
            Surface::Fresnel { rel_permittivity } => {
                let cos_i = emit_dir.dot(fr.refl.normal).abs();
                let s = emit_dir
                    .cross(fr.refl.normal)
                    .normalized()
                    .unwrap_or(emission_basis.h);
                let in_basis = PolBasis { h: s, v: emit_dir.cross(s), k: emit_dir };
                let out_basis = PolBasis { h: s, v: arrive_dir.cross(s), k: arrive_dir };
                let rs = fresnel_rs(rel_permittivity, cos_i);
                let rp = fresnel_rp(rel_permittivity, cos_i);
                let bounce = Jones::diag(Complex::new(rs, 0.0), Complex::new(rp, 0.0))
                    .compose(Jones::basis_change(&emission_basis, &in_basis));
                bounce.apply(jv).couple(&out_basis, u)
            }
        };
        let amp = self.amp_gain(fa, image) * self.g_tag * self.log_dist_amp(len);
        Some(coupling * Complex::from_polar(amp, -TAU * len / self.lambda))
    }

    fn bystander_term(
        &self,
        fa: &FrozenAntenna,
        by: &Bystander,
        depol_sin: f64,
        depol_cos: f64,
        tag_pos: Vec3,
        u: Vec3,
        t: f64,
    ) -> Option<Complex> {
        let body = by.position_at(t);
        let (l1, l2, arrive_dir) = by.path(fa.ant.position, tag_pos, t);
        let emit_dir = (body - fa.ant.position).normalized()?;
        let e0 = match fa.linear_axis {
            Some(axis) => transverse_field(axis, emit_dir)?,
            None => transverse_field(Vec3::X, emit_dir)? * FRAC_1_SQRT_2,
        };
        let e1 = rotate_sc(e0, arrive_dir, depol_sin, depol_cos) * by.scattering;
        let coupling = e1.dot(u);
        let total = l1 + l2;
        let amp = self.amp_gain(fa, body) * self.g_tag * self.log_dist_amp(total);
        Some(Complex::from_polar(amp * coupling, -TAU * total / self.lambda))
    }

    fn jones_bystander_term(
        &self,
        fa: &FrozenAntenna,
        by: &Bystander,
        depol_sin: f64,
        depol_cos: f64,
        tag_pos: Vec3,
        u: Vec3,
        t: f64,
    ) -> Option<Complex> {
        let body = by.position_at(t);
        let (l1, l2, arrive_dir) = by.path(fa.ant.position, tag_pos, t);
        let emit_dir = (body - fa.ant.position).normalized()?;
        let (basis, jv) = self.frozen_jones_along(fa, emit_dir)?;
        let (re, im) = jv.field(&basis);
        let re_out = rotate_sc(re, arrive_dir, depol_sin, depol_cos) * by.scattering;
        let im_out = rotate_sc(im, arrive_dir, depol_sin, depol_cos) * by.scattering;
        let coupling = Complex::new(re_out.dot(u), im_out.dot(u));
        let total = l1 + l2;
        let amp = self.amp_gain(fa, body) * self.g_tag * self.log_dist_amp(total);
        Some(coupling * Complex::from_polar(amp, -TAU * total / self.lambda))
    }

    /// `ChannelModel::observe` with the backscatter amplitude hoisted
    /// (same bits).
    fn observe(&self, f: Complex, antenna_idx: usize, mismatch_rad: f64) -> LinkObservation {
        let forward_power_dbm = self.tx_power_dbm + amp_to_db(f.abs());
        let tag_powered = forward_power_dbm >= self.tag_sensitivity_dbm;

        let h = (f * f).scale(self.m);
        let rx_power_dbm = self.tx_power_dbm + amp_to_db(h.abs());
        let cable = self.cable_phase_rad.get(antenna_idx).copied().unwrap_or(0.0);
        let phase_rad = wrap_tau(-h.arg() + cable);

        LinkObservation {
            forward_power_dbm,
            rx_power_dbm,
            phase_rad,
            tag_powered,
            round_trip: h,
            mismatch_rad,
        }
    }

    // ---- restructured Jones kernel (batch tier, ≤ 1e-12 per link) ----

    /// The restructured amplitude-gain × path-loss product: for the
    /// default panels (`pattern_exponent = 2`) and free-space loss
    /// (`n = 2`) this is `√G₀ · cos θ · g_tag · A₁ₘ / d` — no `powf`,
    /// no `log10` — and falls back to the general exponents otherwise.
    #[inline]
    fn fast_path_amp(&self, fa: &FrozenAntenna, cos_theta: f64, d: f64, inv_d: f64) -> f64 {
        let pattern_amp = if fa.pattern_is_square {
            cos_theta
        } else {
            cos_theta.powf(fa.ant.pattern_exponent * 0.5)
        };
        let dist_amp = if self.ple_is_two { inv_d } else { d.powf(self.neg_half_ple) };
        fa.sqrt_gain * pattern_amp * self.g_tag * self.amp_1m * dist_amp
    }

    /// One Jones link through the restructured kernel. Same physics as
    /// [`Self::evaluate_jones`], reassociated for throughput: direct
    /// linear amplitudes, mirror-leg lengths reused (a mirror is an
    /// isometry), purely-real states skipping the imaginary bounce.
    /// Agrees with the per-link path to ≤ 1e-12 per observable.
    fn evaluate_jones_fast(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        let fa = &self.ants[antenna_idx];
        let ant = &fa.ant;
        let u = dipole.normalized().unwrap_or(Vec3::Z);

        let mut f = Complex::ZERO;
        // Mismatch follows `Antenna::mismatch_angle`'s conventions: a
        // circular antenna has no mismatch concept (0 by definition),
        // everything else defaults to π/2 on a degenerate geometry.
        let circular = matches!(ant.polarization, Polarization::Circular);
        let mut mismatch = if circular { 0.0 } else { FRAC_PI_2 };

        // Line of sight.
        let delta = tag_pos - ant.position;
        let d_los = delta.norm();
        if d_los > 0.0 {
            let inv_d = 1.0 / d_los;
            let dir = delta * inv_d;
            if let Some((basis, jv)) = self.frozen_jones_along(fa, dir) {
                // The RSS-visible mismatch reuses the LoS frame instead
                // of rebuilding it from scratch.
                if !circular {
                    if let Some(u_t) = u.reject_from(dir).normalized() {
                        mismatch = jv.couple(&basis, u_t).abs().clamp(0.0, 1.0).acos();
                    }
                }
                let cos_theta = ant.boresight.dot(dir);
                if cos_theta > 0.0 {
                    let amp = self.fast_path_amp(fa, cos_theta, d_los, inv_d);
                    f += jv.couple(&basis, u) * Complex::from_polar(amp, self.phase_k * d_los);
                }
            }
        }

        // Wall reflections: the antenna-image leg and the tag-image leg
        // have the same length (mirroring is an isometry), so one norm
        // serves both the arrival direction and the emission direction.
        for (ri, fr) in self.refls.iter().enumerate() {
            let delta = tag_pos - fa.mirrored[ri];
            let len = delta.norm();
            if len <= 0.0 {
                continue;
            }
            let inv_len = 1.0 / len;
            let arrive_dir = delta * inv_len;
            let image = fr.refl.mirror(tag_pos);
            let emit_dir = (image - ant.position) * inv_len;
            let cos_theta = ant.boresight.dot(emit_dir);
            if cos_theta <= 0.0 {
                continue;
            }
            let Some((emission_basis, jv)) = self.frozen_jones_along(fa, emit_dir) else {
                continue;
            };
            let coupling = match fr.refl.surface {
                Surface::Empirical => {
                    let re = emission_basis.h * jv.h.re + emission_basis.v * jv.v.re;
                    let re_out = Self::reflect_sc(fr, re, arrive_dir);
                    if fa.jv_is_real {
                        Complex::new(re_out.dot(u), 0.0)
                    } else {
                        let im = emission_basis.h * jv.h.im + emission_basis.v * jv.v.im;
                        let im_out = Self::reflect_sc(fr, im, arrive_dir);
                        Complex::new(re_out.dot(u), im_out.dot(u))
                    }
                }
                Surface::Fresnel { rel_permittivity } => {
                    let cos_i = emit_dir.dot(fr.refl.normal).abs();
                    let s = emit_dir
                        .cross(fr.refl.normal)
                        .normalized()
                        .unwrap_or(emission_basis.h);
                    let in_basis = PolBasis { h: s, v: emit_dir.cross(s), k: emit_dir };
                    let out_basis = PolBasis { h: s, v: arrive_dir.cross(s), k: arrive_dir };
                    let rs = fresnel_rs(rel_permittivity, cos_i);
                    let rp = fresnel_rp(rel_permittivity, cos_i);
                    let bounce = Jones::diag(Complex::new(rs, 0.0), Complex::new(rp, 0.0))
                        .compose(Jones::basis_change(&emission_basis, &in_basis));
                    bounce.apply(jv).couple(&out_basis, u)
                }
            };
            let amp = self.fast_path_amp(fa, cos_theta, len, inv_len);
            f += coupling * Complex::from_polar(amp, self.phase_k * len);
        }

        // Bystander scatter: rare and time-dependent; the bitwise term
        // is already cheap relative to the reflector sum.
        if let Some((by, s, c)) = &self.bystander {
            if let Some(term) = self.jones_bystander_term(fa, by, *s, *c, tag_pos, u, t) {
                f += term;
            }
        }

        self.observe(f, antenna_idx, mismatch)
    }

    /// Batch-tier single-pose dispatch: scalar links stay on the
    /// bitwise kernel, Jones links take the restructured one.
    fn evaluate_batched(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        match self.polarimetry {
            Polarimetry::Scalar => match self.tag {
                TagPolarization::Dipole => self.evaluate_scalar(antenna_idx, tag_pos, dipole, t),
                TagPolarization::Reconfigurable => self.evaluate(antenna_idx, tag_pos, dipole, t),
            },
            Polarimetry::Jones => match self.tag {
                TagPolarization::Dipole => {
                    self.evaluate_jones_fast(antenna_idx, tag_pos, dipole, t)
                }
                TagPolarization::Reconfigurable => {
                    let u = dipole.normalized().unwrap_or(Vec3::Z);
                    let primary = self.evaluate_jones_fast(antenna_idx, tag_pos, u, t);
                    let alt =
                        self.evaluate_jones_fast(antenna_idx, tag_pos, orthogonal_dipole(u), t);
                    if alt.forward_power_dbm > primary.forward_power_dbm {
                        alt
                    } else {
                        primary
                    }
                }
            },
        }
    }
}

/// A batch evaluator over one frozen rig: many poses per call, chunked
/// across workers, deterministic at any thread count within a tier.
#[derive(Debug, Clone, Copy)]
pub struct ChannelBatch<'r> {
    rig: &'r RigFactors,
    opts: BatchOptions,
}

impl<'r> ChannelBatch<'r> {
    /// A batch evaluator with the given options.
    pub fn new(rig: &'r RigFactors, opts: BatchOptions) -> ChannelBatch<'r> {
        ChannelBatch { rig, opts }
    }

    /// The frozen rig this batch evaluates.
    pub fn rig(&self) -> &RigFactors {
        self.rig
    }

    /// Evaluate every pose on one antenna port, returning observations
    /// in pose order.
    pub fn evaluate(&self, antenna_idx: usize, poses: &PoseBatch) -> Vec<LinkObservation> {
        let mut out = Vec::new();
        self.evaluate_into(antenna_idx, poses, &mut out);
        out
    }

    /// [`Self::evaluate`] into a caller-owned buffer (cleared first).
    /// Poses are split into contiguous `chunk_bounds` chunks across up
    /// to `opts.threads` scoped workers; each pose's value never
    /// depends on its chunk, so the result is bit-identical at any
    /// worker count.
    pub fn evaluate_into(
        &self,
        antenna_idx: usize,
        poses: &PoseBatch,
        out: &mut Vec<LinkObservation>,
    ) {
        let n = poses.len();
        out.clear();
        let workers = self.opts.threads.max(1).min(n.max(1));
        if workers == 1 {
            out.extend((0..n).map(|i| self.eval_pose(antenna_idx, poses, i)));
            return;
        }
        out.resize_with(n, placeholder_observation);
        let mut chunks: Vec<(usize, &mut [LinkObservation])> = Vec::with_capacity(workers);
        let mut rest: &mut [LinkObservation] = out.as_mut_slice();
        for w in 0..workers {
            let (lo, hi) = rf_core::chunk_bounds(n, workers, w);
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            chunks.push((lo, chunk));
        }
        std::thread::scope(|scope| {
            for (lo, chunk) in chunks {
                scope.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = self.eval_pose(antenna_idx, poses, lo + off);
                    }
                });
            }
        });
    }

    #[inline]
    fn eval_pose(&self, antenna_idx: usize, poses: &PoseBatch, i: usize) -> LinkObservation {
        // Link batches evaluate in f64 under either tier — see the
        // module docs; the F32Tolerance tier selects the f32 *grid*
        // kernels, which have their own entry points.
        self.rig
            .evaluate_batched(antenna_idx, poses.position(i), poses.dipole(i), poses.t(i))
    }
}

/// The second dipole state of a reconfigurable tag (same rule as the
/// per-link channel): the in-board-plane orthogonal of `u`, falling
/// back to X for a board-normal dipole.
fn orthogonal_dipole(u: Vec3) -> Vec3 {
    Vec3::new(-u.y, u.x, 0.0).normalized().unwrap_or(Vec3::X)
}

/// `polarization::rotate_about_axis` with the trig supplied by the
/// caller — bit-identical given the same `sin`/`cos`.
#[inline]
fn rotate_sc(e: Vec3, k: Vec3, s: f64, c: f64) -> Vec3 {
    e * c + k.cross(e) * s + k * (k.dot(e) * (1.0 - c))
}

fn amp_to_db(a: f64) -> f64 {
    if a <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * a.log10()
    }
}

fn placeholder_observation() -> LinkObservation {
    LinkObservation {
        forward_power_dbm: f64::NEG_INFINITY,
        rx_power_dbm: f64::NEG_INFINITY,
        phase_rad: 0.0,
        tag_powered: false,
        round_trip: Complex::ZERO,
        mismatch_rad: 0.0,
    }
}

// ---- SoA grid kernels ----

/// Distances from `src` to the row of points `(xs[i], y, z)`, written
/// into `out` (lengths must match). The per-row `Δy²`/`Δz²` terms are
/// hoisted; the per-point expression `((Δx² + Δy²) + Δz²).sqrt()`
/// associates exactly like `Vec3::distance`, so each output is
/// **bit-identical** to `Vec3::new(xs[i], y, z).distance(src)` — this
/// is the kernel under the emission-table build in `polardraw-core`.
///
/// # Panics
/// Panics if `xs` and `out` lengths differ.
pub fn distances_row(src: Vec3, xs: &[f64], y: f64, z: f64, out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "xs/out length mismatch");
    let dy = y - src.y;
    let dy2 = dy * dy;
    let dz = z - src.z;
    let dz2 = dz * dz;
    for (o, &x) in out.iter_mut().zip(xs) {
        let dx = x - src.x;
        *o = ((dx * dx + dy2) + dz2).sqrt();
    }
}

/// [`distances_row`] in `f32` — the [`BatchPrecision::F32Tolerance`]
/// grid kernel (twice the SIMD lanes of the `f64` row). Inputs are
/// cast once per call/row; accuracy is gated by the emission-delta
/// oracle in `tests/channel_batch.rs`, not a bitwise contract.
///
/// # Panics
/// Panics if `xs` and `out` lengths differ.
pub fn distances_row_f32(src: Vec3, xs: &[f32], y: f32, z: f32, out: &mut [f32]) {
    assert_eq!(xs.len(), out.len(), "xs/out length mismatch");
    let sx = src.x as f32;
    let dy = y - src.y as f32;
    let dy2 = dy * dy;
    let dz = z - src.z as f32;
    let dz2 = dz * dz;
    for (o, &x) in out.iter_mut().zip(xs) {
        let dx = x - sx;
        *o = ((dx * dx + dy2) + dz2).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use rf_core::rng::{derive_seed_indexed, rng_from_seed};

    fn whiteboard(jones: bool) -> ChannelModel {
        let mut ch = ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.30);
        if jones {
            ch.polarimetry = Polarimetry::Jones;
        }
        ch
    }

    fn sample_pose(rng: &mut rf_core::Rng64) -> (Vec3, Vec3) {
        let pos = Vec3::new(
            rng.gen_range(-0.3..0.3),
            rng.gen_range(0.5..1.0),
            rng.gen_range(-0.05..0.05),
        );
        let dip = loop {
            let v = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            if let Some(u) = v.normalized() {
                break u;
            }
        };
        (pos, dip)
    }

    #[test]
    fn freeze_requires_a_fixed_plan() {
        let mut ch = whiteboard(false);
        assert!(RigFactors::freeze(&ch).is_some());
        ch.plan = ChannelPlan::Hopping { sequence: vec![10, 20, 30], dwell_s: 0.2 };
        assert!(RigFactors::freeze(&ch).is_none());
    }

    #[test]
    fn frozen_single_link_is_bitwise_scalar_and_jones() {
        for jones in [false, true] {
            let ch = whiteboard(jones);
            let rig = RigFactors::freeze(&ch).expect("fixed plan");
            let mut rng = rng_from_seed(derive_seed_indexed(7, "batch-unit", jones as u64));
            for i in 0..24 {
                let (pos, dip) = sample_pose(&mut rng);
                let port = i % 2;
                let a = ch.evaluate(port, pos, dip, 0.1 * i as f64);
                let b = rig.evaluate(port, pos, dip, 0.1 * i as f64);
                assert_eq!(a.forward_power_dbm.to_bits(), b.forward_power_dbm.to_bits());
                assert_eq!(a.rx_power_dbm.to_bits(), b.rx_power_dbm.to_bits());
                assert_eq!(a.phase_rad.to_bits(), b.phase_rad.to_bits());
                assert_eq!(a.mismatch_rad.to_bits(), b.mismatch_rad.to_bits());
                assert_eq!(a.tag_powered, b.tag_powered);
            }
        }
    }

    #[test]
    fn distances_row_matches_vec3_bitwise() {
        let src = Vec3::new(-0.28, 0.15, 0.30);
        let xs: Vec<f64> = (0..64).map(|i| -0.3 + 0.01 * i as f64).collect();
        let mut out = vec![0.0; xs.len()];
        distances_row(src, &xs, 0.72, 0.0, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            let want = Vec3::new(x, 0.72, 0.0).distance(src);
            assert_eq!(want.to_bits(), out[i].to_bits(), "col {i}");
        }
    }

    #[test]
    fn batch_threads_do_not_change_bits() {
        let ch = whiteboard(true);
        let rig = RigFactors::freeze(&ch).expect("fixed plan");
        let mut rng = rng_from_seed(11);
        let mut poses = PoseBatch::with_capacity(33);
        for i in 0..33 {
            let (pos, dip) = sample_pose(&mut rng);
            poses.push(pos, dip, 0.05 * i as f64);
        }
        let base = ChannelBatch::new(&rig, BatchOptions::default()).evaluate(0, &poses);
        for threads in [2, 3, 8] {
            let opts = BatchOptions { threads, ..BatchOptions::default() };
            let got = ChannelBatch::new(&rig, opts).evaluate(0, &poses);
            assert_eq!(base.len(), got.len());
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(a.rx_power_dbm.to_bits(), b.rx_power_dbm.to_bits());
                assert_eq!(a.phase_rad.to_bits(), b.phase_rad.to_bits());
            }
        }
    }
}
