//! # polardraw-bench — benchmarks and the reproduction harness
//!
//! Two entry points:
//!
//! * `cargo run --release -p polardraw-bench --bin repro [-- ids…]` —
//!   regenerate every table and figure of the paper (or a subset by
//!   id), printing the measured rows next to the paper's claims and
//!   writing CSVs under `results/`.
//! * `cargo bench -p polardraw-bench` — std-only micro/meso benchmarks
//!   (see [`harness`]): channel evaluation, Gen2 inventory,
//!   pre-processing, Viterbi decoding, the three trackers end-to-end,
//!   and the recognizer — backing the paper's §3.5 claim that decoding
//!   is real-time.
//!
//! Shared workload builders live here so the benches and the harness
//! stay in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use pen_sim::{Scene, WriterProfile};
use rfid_sim::reader::TagPose;
use rfid_sim::{Reader, TagReport};

/// Build the standard benchmark report stream: one letter written on
/// the default rig.
pub fn letter_reports(ch: char, seed: u64) -> Vec<TagReport> {
    let session = pen_sim::scene::write_text(
        &Scene::default(),
        &WriterProfile::natural(),
        &ch.to_string(),
        seed,
    );
    let channel = rf_physics::ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.30);
    let reader = Reader::new(channel);
    let poses: Vec<TagPose> = session
        .poses
        .iter()
        .map(|p| TagPose { t: p.t, position: p.tip, dipole: p.dipole })
        .collect();
    reader.inventory(&poses, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_workload_is_nonempty_and_deterministic() {
        let a = letter_reports('W', 3);
        let b = letter_reports('W', 3);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}
