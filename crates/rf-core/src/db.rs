//! Decibel / linear power conversions.
//!
//! RFID readers report RSS in dBm (the paper's Figure 3(b) peaks at
//! −24 dBm); link-budget arithmetic is additive in dB but the underlying
//! channel is multiplicative in linear power. These helpers keep the two
//! domains straight.

/// Convert a power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert a power in milliwatts to dBm.
///
/// Returns `f64::NEG_INFINITY` for non-positive powers (a zero-power
/// signal is infinitely far down).
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// Convert a dB gain/loss to a linear power ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear power ratio to dB.
///
/// Returns `f64::NEG_INFINITY` for non-positive ratios.
pub fn ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Convert a linear *amplitude* ratio to dB (20·log10).
pub fn amplitude_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Sum two powers expressed in dBm (incoherent combination).
pub fn dbm_add(a_dbm: f64, b_dbm: f64) -> f64 {
    mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for dbm in [-90.0, -24.0, 0.0, 30.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn reference_points() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12, "0 dBm = 1 mW");
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9, "30 dBm = 1 W");
        assert!((db_to_ratio(3.0) - 1.9953).abs() < 1e-3, "3 dB ≈ ×2");
        assert!((db_to_ratio(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_power_is_negative_infinity() {
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
        assert_eq!(ratio_to_db(-1.0), f64::NEG_INFINITY);
        assert_eq!(amplitude_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn amplitude_db_is_twice_power_db() {
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-9);
        // cos β amplitude factor → 20·log10 in dB; round-trip backscatter
        // (two legs) → 40·log10, as used in the link budget.
        let beta: f64 = 60f64.to_radians();
        let one_leg = amplitude_to_db(beta.cos());
        assert!((one_leg - (-6.02)).abs() < 0.01);
    }

    #[test]
    fn incoherent_sum_of_equal_powers_is_plus_3db() {
        assert!((dbm_add(-30.0, -30.0) - (-26.9897)).abs() < 1e-3);
    }
}
