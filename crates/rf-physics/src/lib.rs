//! # rf-physics — electromagnetic substrate for the PolarDraw reproduction
//!
//! The paper's measurements come from real UHF RFID hardware in a
//! cluttered office. This crate replaces that hardware with a
//! physics-grade simulation of the monostatic backscatter link:
//!
//! * [`polarization`] — the heart of the paper: the scalar `ê·u`
//!   coupling between a linearly-polarized reader antenna and the tag's
//!   dipole (the cos β law of Figure 1/3(b)), plus the full Jones
//!   calculus — [`polarization::PolBasis`] ray frames,
//!   [`polarization::JonesVector`] fields, 2×2 [`polarization::Jones`]
//!   legs, and [`polarization::PolState`] (linear/circular/elliptical)
//!   — for everything the scalar reduction cannot express.
//! * [`antenna`] — linearly/circularly polarized antenna models with
//!   patch-like gain patterns, each also exposable as a Jones pattern
//!   ([`Antenna::jones_along`]).
//! * [`propagation`] — free-space and log-distance path loss.
//! * [`multipath`] — image-method planar reflectors (walls, the
//!   whiteboard's surroundings) and a bystander scatterer (static or
//!   walking), both of which rotate polarization on reflection. These
//!   produce the "spurious" phase readings of §2 that PolarDraw's
//!   pre-processing must reject, and the interference regimes of Fig. 16.
//!   Reflectors carry a [`multipath::Surface`] boundary model: the
//!   calibrated empirical bounce or a lossless-dielectric Fresnel
//!   boundary with proper s/p coefficients.
//! * [`channel`] — composes everything into a time-varying complex
//!   channel: one-way field sum `F = Σ_p f_p`, round-trip backscatter
//!   `h = m·F²`, forward tag power for the sensitivity gate. Runs either
//!   the scalar fast path or full Jones propagation
//!   ([`channel::Polarimetry`]), with fixed or polarization-
//!   reconfigurable tags ([`channel::TagPolarization`]).
//! * [`noise`] — thermal floor, RSS and phase measurement noise.
//! * [`spectrum`] — the FCC 902–928 MHz channel plan with an optional
//!   frequency-hopping sequence (the paper implicitly uses per-channel
//!   processing; fixed-channel is the default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod batch;
pub mod channel;
pub mod multipath;
pub mod noise;
pub mod polarization;
pub mod propagation;
pub mod spectrum;

pub use antenna::{Antenna, Polarization};
pub use batch::{BatchOptions, BatchPrecision, ChannelBatch, PoseBatch, RigFactors};
pub use channel::{ChannelModel, LinkObservation, Polarimetry, TagPolarization};
pub use multipath::{fresnel_rp, fresnel_rs, Bystander, BystanderMotion, Reflector, Surface};
pub use noise::NoiseModel;
pub use polarization::{Jones, JonesVector, PolBasis, PolState};
pub use spectrum::ChannelPlan;
