//! The experiment registry: every paper table/figure, addressable by id.

use crate::report::Report;
use crate::runner::RunOpts;

/// A runnable experiment definition.
#[derive(Clone)]
pub struct ExperimentDef {
    /// Primary id ("fig13"). Some definitions produce several reports
    /// (e.g. fig13 also yields fig14).
    pub id: &'static str,
    /// Every report id this definition produces.
    pub produces: &'static [&'static str],
    /// Short description.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&RunOpts) -> Vec<Report>,
}

/// All experiments, in paper order.
pub fn all_experiments() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "table1",
            produces: &["table1"],
            title: "Infrastructure cost comparison",
            run: crate::exp::table1::run,
        },
        ExperimentDef {
            id: "fig02",
            produces: &["fig02"],
            title: "Recovered trajectory gallery",
            run: crate::exp::fig02::run,
        },
        ExperimentDef {
            id: "fig03",
            produces: &["fig03b", "fig03c"],
            title: "Feasibility: RSS/phase under rotation and translation",
            run: crate::exp::fig03::run,
        },
        ExperimentDef {
            id: "fig09",
            produces: &["fig09"],
            title: "Table 3 decoding from measured RSS trends",
            run: crate::exp::fig09::run,
        },
        ExperimentDef {
            id: "fig10",
            produces: &["fig10"],
            title: "Azimuth correction before/after",
            run: crate::exp::fig10::run,
        },
        ExperimentDef {
            id: "fig13",
            produces: &["fig13", "fig14"],
            title: "Alphabet accuracy + confusion matrix",
            run: crate::exp::fig13::run,
        },
        ExperimentDef {
            id: "fig15",
            produces: &["fig15"],
            title: "In-air vs whiteboard writing",
            run: crate::exp::fig15::run,
        },
        ExperimentDef {
            id: "fig16",
            produces: &["fig16"],
            title: "Bystander multipath sweep",
            run: crate::exp::fig16::run,
        },
        ExperimentDef {
            id: "fig18",
            produces: &["fig18"],
            title: "Word recognition vs word length, three systems",
            run: crate::exp::fig18::run,
        },
        ExperimentDef {
            id: "fig19",
            produces: &["fig19", "fig20"],
            title: "Procrustes CDF + trajectory gallery, three systems",
            run: crate::exp::fig19::run,
        },
        ExperimentDef {
            id: "fig21",
            produces: &["fig21"],
            title: "Accuracy across users",
            run: crate::exp::fig21::run,
        },
        ExperimentDef {
            id: "table5",
            produces: &["table5", "fig22"],
            title: "Accuracy vs tag-to-reader distance",
            run: crate::exp::table5::run,
        },
        ExperimentDef {
            id: "table6",
            produces: &["table6"],
            title: "With vs without polarization",
            run: crate::exp::table6::run,
        },
        ExperimentDef {
            id: "table7",
            produces: &["table7"],
            title: "Sensitivity to assumed elevation angle",
            run: crate::exp::table7::run,
        },
        ExperimentDef {
            id: "table8",
            produces: &["table8"],
            title: "Sensitivity to inter-antenna angle",
            run: crate::exp::table8::run,
        },
        ExperimentDef {
            id: "faults",
            produces: &["faults"],
            title: "Robustness under injected reader faults (not in paper)",
            run: crate::exp::faults::run,
        },
        ExperimentDef {
            id: "streaming",
            produces: &["streaming"],
            title: "Online fixed-lag decoding: lag × disconnect intensity (not in paper)",
            run: crate::exp::streaming::run,
        },
        ExperimentDef {
            id: "fleet",
            produces: &["fleet"],
            title: "Multi-session serving: fleet size vs pool behaviour (not in paper)",
            run: crate::exp::fleet::run,
        },
        ExperimentDef {
            id: "overload",
            produces: &["overload"],
            title: "Fleet overload: graceful degradation under background load (not in paper)",
            run: crate::exp::overload::run,
        },
        ExperimentDef {
            id: "polarization",
            produces: &["polarization"],
            title: "Reader polarization × tag reconfiguration under the Jones channel (not in paper)",
            run: crate::exp::polarization::run,
        },
        ExperimentDef {
            id: "recovery",
            produces: &["recovery"],
            title: "Crash recovery: checkpoint interval × kill point vs durability cost (not in paper)",
            run: crate::exp::recovery::run,
        },
    ]
}

/// Look up an experiment by any id it produces.
pub fn find(id: &str) -> Option<ExperimentDef> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id || e.produces.contains(&id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let produced: Vec<&str> =
            all_experiments().iter().flat_map(|e| e.produces.iter().copied()).collect();
        for id in [
            "table1", "fig02", "fig03b", "fig03c", "fig09", "fig10", "fig13", "fig14",
            "fig15", "fig16", "fig18", "fig19", "fig20", "fig21", "fig22", "table5",
            "table6", "table7", "table8", "faults", "streaming", "fleet", "overload",
            "polarization", "recovery",
        ] {
            assert!(produced.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> =
            all_experiments().iter().flat_map(|e| e.produces.iter().copied()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn find_resolves_secondary_ids() {
        assert_eq!(find("fig14").unwrap().id, "fig13");
        assert_eq!(find("fig22").unwrap().id, "table5");
        assert!(find("fig99").is_none());
    }

    #[test]
    fn cheap_experiments_run_in_tests() {
        // table1 is pure arithmetic; run it for real.
        let reports = (find("table1").unwrap().run)(&RunOpts::default());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, "table1");
    }
}
