//! Scenario construction: RF rigs, trackers, and the simulate→track
//! round trip shared by every experiment.

use baselines::{RfIdraw, RfIdrawConfig, Tagoram, TagoramConfig};
use pen_sim::kinematics::PenPose;
use pen_sim::scene::Session;
use pen_sim::scene::ChannelMode;
use pen_sim::{Scene, WriterProfile};
use polardraw_core::hmm::KernelOptions;
use polardraw_core::{PolarDraw, PolarDrawConfig};
use rf_core::rng::derive_seed;
use rf_core::{Vec2, Vec3};
use rf_physics::antenna::{Antenna, Polarization};
use rf_physics::{Bystander, ChannelModel, PolState, Polarimetry, TagPolarization};
use rfid_sim::faults::{FaultInjector, FaultPlan};
use rfid_sim::reader::TagPose;
use rfid_sim::tracking::{Trail, TrajectoryTracker};
use rfid_sim::{Reader, TagReport};

/// Which tracking system a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerKind {
    /// PolarDraw, two linearly-polarized antennas (the paper's system).
    PolarDraw,
    /// PolarDraw with polarization-based estimation disabled (Table 6).
    PolarDrawNoPolarization,
    /// Tagoram with two antennas (hardware parity).
    Tagoram2,
    /// Tagoram with four antennas (its native configuration).
    Tagoram4,
    /// RF-IDraw with four antennas (§5.1's comparison variant).
    RfIdraw4,
}

impl TrackerKind {
    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            TrackerKind::PolarDraw => "PolarDraw (2-antenna)",
            TrackerKind::PolarDrawNoPolarization => "PolarDraw w/o polarization",
            TrackerKind::Tagoram2 => "Tagoram (2-antenna)",
            TrackerKind::Tagoram4 => "Tagoram (4-antenna)",
            TrackerKind::RfIdraw4 => "RF-IDraw (4-antenna)",
        }
    }
}

/// Everything that parameterizes one simulated trial.
#[derive(Debug, Clone)]
pub struct TrialSetup {
    /// Text to write (A–Z words).
    pub text: String,
    /// Writing scene (board position, in-air flag).
    pub scene: Scene,
    /// Writer style.
    pub profile: WriterProfile,
    /// Tracker under test.
    pub tracker: TrackerKind,
    /// Antenna mounting angle γ (PolarDraw only).
    pub gamma_rad: f64,
    /// Assumed pen elevation αe fed to the algorithm (Table 7 sweep).
    pub alpha_e_rad: f64,
    /// Optional bystander scatterer (Fig. 16).
    pub bystander: Option<Bystander>,
    /// Tag-to-reader distance: how far the antennas stand off the
    /// writing plane, metres (Table 5 sweeps this).
    pub standoff_m: f64,
    /// Grid coarsening factor applied to every tracker's cell size
    /// (1.0 = paper fidelity; >1 trades accuracy for speed, e.g. in the
    /// registry smoke test).
    pub cell_scale: f64,
    /// Optional reader-fault injection applied to the report stream
    /// before tracking (`None` and `Some(identity)` are both provable
    /// no-ops; see `rfid_sim::faults`).
    pub faults: Option<FaultPlan>,
    /// Decode kernel for the PolarDraw variants (`exact()` = bit-exact
    /// reference path; `fast()` = f32 + adaptive beam, validated by the
    /// tolerance harness). Baseline trackers ignore this.
    pub kernel: KernelOptions,
    /// Which polarization formalism the RF substrate runs
    /// (`repro --channel jones`). Mirrored into `scene.channel`.
    pub channel: ChannelMode,
    /// Override the reader antennas' radiated polarization state
    /// (Jones channel only; `None` keeps the rig's stock antennas).
    /// Linear rigs keep their mounted ±γ axes as the state's frame.
    pub reader_pol: Option<PolState>,
    /// Tag antenna behaviour: the paper's fixed dipole or a
    /// polarization-reconfigurable tag (Fara et al.).
    pub tag_mode: TagPolarization,
}

impl TrialSetup {
    /// The default single-letter trial for PolarDraw.
    pub fn letter(ch: char) -> TrialSetup {
        TrialSetup {
            text: ch.to_string(),
            scene: Scene::default(),
            profile: WriterProfile::natural(),
            tracker: TrackerKind::PolarDraw,
            gamma_rad: 15f64.to_radians(),
            alpha_e_rad: 30f64.to_radians(),
            bystander: None,
            standoff_m: 0.65,
            cell_scale: 1.0,
            faults: None,
            kernel: KernelOptions::exact(),
            channel: ChannelMode::Scalar,
            reader_pol: None,
            tag_mode: TagPolarization::Dipole,
        }
    }

    /// Same, for a word.
    pub fn word(word: &str) -> TrialSetup {
        TrialSetup { text: word.to_string(), ..TrialSetup::letter('A') }
    }

    /// Switch the tracker.
    pub fn with_tracker(mut self, tracker: TrackerKind) -> TrialSetup {
        self.tracker = tracker;
        self
    }

    /// Coarsen (or refine) every tracker's grid by this factor.
    pub fn with_cell_scale(mut self, cell_scale: f64) -> TrialSetup {
        self.cell_scale = cell_scale;
        self
    }

    /// Inject reader faults into the report stream before tracking.
    pub fn with_faults(mut self, plan: FaultPlan) -> TrialSetup {
        self.faults = Some(plan);
        self
    }

    /// Select the PolarDraw decode kernel (`repro --kernel fast`).
    pub fn with_kernel(mut self, kernel: KernelOptions) -> TrialSetup {
        self.kernel = kernel;
        self
    }

    /// Select the polarization formalism (`repro --channel jones`).
    /// Keeps `scene.channel` consistent so serialized scenes carry it.
    pub fn with_channel(mut self, channel: ChannelMode) -> TrialSetup {
        self.channel = channel;
        self.scene.channel = channel;
        self
    }

    /// Override the reader antennas' radiated polarization state
    /// (meaningful under the Jones channel).
    pub fn with_reader_pol(mut self, state: PolState) -> TrialSetup {
        self.reader_pol = Some(state);
        self
    }

    /// Select the tag's polarization behaviour.
    pub fn with_tag_mode(mut self, tag_mode: TagPolarization) -> TrialSetup {
        self.tag_mode = tag_mode;
        self
    }
}

/// The outcome of one simulate→track round trip.
#[derive(Debug, Clone)]
pub struct TrialRun {
    /// Ground-truth pen trajectory.
    pub truth: Vec<Vec2>,
    /// Recovered trail.
    pub trail: Trail,
    /// Raw report stream (for protocol-level analyses).
    pub reports: Vec<TagReport>,
}

/// The RF rig for a tracker kind. Baseline systems get stock
/// circularly-polarized antennas (orientation-independent coupling —
/// their algorithms assume reads never vanish with pen rotation);
/// PolarDraw swaps in the linearly-polarized panels of Fig. 1.
pub fn channel_for(kind: TrackerKind, gamma_rad: f64, standoff_m: f64) -> ChannelModel {
    match kind {
        TrackerKind::PolarDraw | TrackerKind::PolarDrawNoPolarization => {
            ChannelModel::two_antenna_whiteboard(gamma_rad, 0.56, standoff_m)
        }
        TrackerKind::Tagoram2 => circular_rig(&at_standoff(TagoramConfig::two_antenna().antennas, standoff_m)),
        TrackerKind::Tagoram4 => circular_rig(&at_standoff(TagoramConfig::four_antenna().antennas, standoff_m)),
        TrackerKind::RfIdraw4 => circular_rig(&at_standoff(RfIdrawConfig::four_antenna().antennas, standoff_m)),
    }
}

/// Move an antenna layout to a given standoff from the board plane.
pub fn at_standoff(mut antennas: Vec<Vec3>, standoff_m: f64) -> Vec<Vec3> {
    for a in &mut antennas {
        a.z = standoff_m.max(0.05);
    }
    antennas
}

/// The effective polarization angle γ seen from the writing-area centre:
/// projecting each antenna's polarization axis onto the plane transverse
/// to its line of sight warps the mounted γ slightly (a real deployment
/// calibrates this; the algorithm consumes the effective value).
pub fn effective_gamma(channel: &ChannelModel, write_center: Vec3) -> f64 {
    let mut angles = Vec::new();
    for ant in &channel.antennas {
        let Some(axis) = ant.linear_axis() else { continue };
        let Some(k) = (write_center - ant.position).normalized() else { continue };
        let Some(e) = rf_physics::polarization::transverse_field(axis, k) else { continue };
        // Angle of the transverse field in the board plane, folded to
        // the deviation from board-vertical (π/2).
        let a = e.y.atan2(e.x);
        angles.push((a - std::f64::consts::FRAC_PI_2).abs());
    }
    if angles.is_empty() {
        0.0
    } else {
        angles.iter().sum::<f64>() / angles.len() as f64
    }
}

fn circular_rig(antennas: &[Vec3]) -> ChannelModel {
    let write_center = Vec3::new(0.0, 0.72, 0.0);
    let antennas: Vec<Antenna> = antennas
        .iter()
        .map(|&p| {
            Antenna::circular(p, (write_center - p).normalized().expect("unit boresight"))
        })
        .collect();
    let n = antennas.len();
    let mut ch = ChannelModel::free_space(antennas);
    ch.reflectors = rf_physics::channel::office_clutter();
    ch.cable_phase_rad = (0..n).map(|i| 0.9 + 1.3 * i as f64).collect();
    ch
}

/// The HMM board region and bootstrap for a setup's writing area:
/// `(board_min, board_max, start_hint)`.
fn board_for(setup: &TrialSetup) -> (Vec2, Vec2, Vec2) {
    let origin = setup.scene.origin;
    let size = setup.profile.letter_size_m;
    let advance = size * 0.7 + size * setup.scene.letter_gap;
    let letters = setup.text.chars().filter(|c| c.is_ascii_alphabetic()).count().max(1);
    let board_min = Vec2::new(origin.x - 0.12, origin.y - 0.12);
    let board_max = Vec2::new(
        origin.x + advance * letters as f64 + 0.12,
        origin.y + size + 0.15,
    );
    let start_hint = Vec2::new(origin.x, origin.y + size * 0.5);
    (board_min, board_max, start_hint)
}

/// The full PolarDraw configuration `tracker_for` would run for this
/// setup — public so integration tests can call
/// `PolarDraw::track_with_diagnostics` (for the `DegradationReport`)
/// on exactly the rig a trial uses. Panics if the setup's tracker is
/// not a PolarDraw variant.
pub fn polardraw_config_for(setup: &TrialSetup) -> PolarDrawConfig {
    assert!(
        matches!(setup.tracker, TrackerKind::PolarDraw | TrackerKind::PolarDrawNoPolarization),
        "polardraw_config_for needs a PolarDraw setup, got {:?}",
        setup.tracker
    );
    let origin = setup.scene.origin;
    let (board_min, board_max, start_hint) = board_for(setup);
    let channel = channel_for(setup.tracker, setup.gamma_rad, setup.standoff_m);
    let gamma_eff = effective_gamma(&channel, Vec3::new(origin.x + 0.2, origin.y + 0.1, 0.0));
    let mut cfg = PolarDrawConfig::default().with_gamma(gamma_eff);
    cfg.antennas = [channel.antennas[0].position, channel.antennas[1].position];
    cfg.alpha_e_rad = setup.alpha_e_rad;
    cfg.board_min = board_min;
    cfg.board_max = board_max;
    cfg.start_hint = start_hint;
    cfg.use_polarization = setup.tracker == TrackerKind::PolarDraw;
    cfg.hmm.cell_m *= setup.cell_scale.max(0.01);
    cfg
}

/// Build the tracker instance for a setup, with its HMM board region
/// sized around the writing area.
pub fn tracker_for(setup: &TrialSetup) -> Box<dyn TrajectoryTracker + Send + Sync> {
    let (board_min, board_max, start_hint) = board_for(setup);

    match setup.tracker {
        TrackerKind::PolarDraw | TrackerKind::PolarDrawNoPolarization => {
            Box::new(PolarDraw::new(polardraw_config_for(setup)).with_kernel(setup.kernel))
        }
        TrackerKind::Tagoram2 | TrackerKind::Tagoram4 => {
            let mut cfg = if setup.tracker == TrackerKind::Tagoram2 {
                TagoramConfig::two_antenna()
            } else {
                TagoramConfig::four_antenna()
            };
            cfg.antennas = at_standoff(cfg.antennas, setup.standoff_m);
            cfg.board_min = board_min;
            cfg.board_max = board_max;
            cfg.start_hint = start_hint;
            cfg.cell_m *= setup.cell_scale.max(0.01);
            Box::new(Tagoram::new(cfg))
        }
        TrackerKind::RfIdraw4 => {
            let mut cfg = RfIdrawConfig::four_antenna();
            cfg.antennas = at_standoff(cfg.antennas, setup.standoff_m);
            cfg.board_min = board_min;
            cfg.board_max = board_max;
            cfg.start_hint = start_hint;
            cfg.cell_m *= setup.cell_scale.max(0.01);
            Box::new(RfIdraw::new(cfg))
        }
    }
}

/// Convert pen poses to the reader's view.
pub fn to_tag_poses(poses: &[PenPose]) -> Vec<TagPose> {
    poses
        .iter()
        .map(|p| TagPose { t: p.t, position: p.tip, dipole: p.dipole })
        .collect()
}

/// The complete RF rig a trial runs: the tracker's base channel with
/// the setup's bystander, polarimetry, tag mode, and reader-polarization
/// override applied. A default setup returns exactly
/// [`channel_for`] + bystander — the rig every committed artifact used.
pub fn rig_for(setup: &TrialSetup) -> ChannelModel {
    let mut channel = channel_for(setup.tracker, setup.gamma_rad, setup.standoff_m);
    channel.bystander = setup.bystander;
    channel.polarimetry = match setup.channel {
        ChannelMode::Scalar => Polarimetry::Scalar,
        ChannelMode::Jones => Polarimetry::Jones,
    };
    channel.tag = setup.tag_mode;
    if let Some(state) = setup.reader_pol {
        // Re-polarize the rig: each linear antenna radiates `state` in
        // the frame anchored to its mounted axis, so a Linear{ψ=0}
        // override is physically the stock antenna. Circular baseline
        // rigs have no mounted axis and keep their antennas.
        for ant in &mut channel.antennas {
            if let Some(axis) = ant.linear_axis() {
                ant.polarization = Polarization::Jones { axis, state };
            }
        }
    }
    channel
}

/// Simulate the trial's report stream without tracking it: write,
/// propagate, read, inject faults. This is the front half of
/// [`run_trial`], split out so streaming/session consumers (the
/// `streaming` experiment, session tests, `examples/live_session.rs`)
/// can feed the same stream to an `OnlineTracker` or a supervised
/// session instead of the batch tracker. Returns `(truth, reports)`.
pub fn simulate_reports(setup: &TrialSetup, seed: u64) -> (Vec<Vec2>, Vec<TagReport>) {
    let session: Session = pen_sim::scene::write_text(
        &setup.scene,
        &setup.profile,
        &setup.text,
        derive_seed(seed, "pen"),
    );
    let reader = Reader::new(rig_for(setup));
    let mut reports = reader.inventory(&to_tag_poses(&session.poses), derive_seed(seed, "reader"));
    if let Some(plan) = &setup.faults {
        // Identity plans are a no-op inside the injector, so a sweep's
        // intensity-0 column is bit-identical to faults-off.
        reports = FaultInjector::new(plan.clone(), derive_seed(seed, "faults")).inject(&reports);
    }
    (session.truth.points, reports)
}

/// Run one full trial: write, propagate, read, track.
pub fn run_trial(setup: &TrialSetup, seed: u64) -> TrialRun {
    let (truth, reports) = simulate_reports(setup, seed);
    let tracker = tracker_for(setup);
    let trail = tracker.track(&reports);
    TrialRun { truth, trail, reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            TrackerKind::PolarDraw,
            TrackerKind::PolarDrawNoPolarization,
            TrackerKind::Tagoram2,
            TrackerKind::Tagoram4,
            TrackerKind::RfIdraw4,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn channels_match_tracker_port_counts() {
        for kind in [
            TrackerKind::PolarDraw,
            TrackerKind::Tagoram2,
            TrackerKind::Tagoram4,
            TrackerKind::RfIdraw4,
        ] {
            let ch = channel_for(kind, 15f64.to_radians(), 0.65);
            let setup = TrialSetup::letter('I').with_tracker(kind);
            let tracker = tracker_for(&setup);
            assert_eq!(
                ch.antenna_count(),
                tracker.antenna_count(),
                "{:?} rig/tracker mismatch",
                kind
            );
        }
    }

    #[test]
    fn baseline_rigs_are_circular() {
        let ch = channel_for(TrackerKind::Tagoram4, 0.0, 0.65);
        for a in &ch.antennas {
            assert!(a.linear_axis().is_none(), "baselines use circular antennas");
        }
    }

    #[test]
    fn trial_runs_end_to_end() {
        let setup = TrialSetup::letter('I');
        let run = run_trial(&setup, 1);
        assert!(!run.truth.is_empty());
        assert!(!run.reports.is_empty());
        assert!(!run.trail.is_empty());
    }

    #[test]
    fn identity_fault_plan_leaves_trials_bit_identical() {
        let clean = run_trial(&TrialSetup::letter('I'), 5);
        let ident = run_trial(&TrialSetup::letter('I').with_faults(FaultPlan::identity()), 5);
        assert_eq!(clean.reports, ident.reports);
        assert_eq!(clean.trail.points, ident.trail.points);
        assert_eq!(clean.trail.times, ident.trail.times);
    }

    #[test]
    fn injected_faults_change_the_stream_but_not_determinism() {
        let setup = TrialSetup::letter('I').with_faults(FaultPlan::at_intensity(0.8));
        let a = run_trial(&setup, 5);
        let b = run_trial(&setup, 5);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.trail.points, b.trail.points);
        let clean = run_trial(&TrialSetup::letter('I'), 5);
        assert_ne!(a.reports, clean.reports, "intensity 0.8 must actually degrade the stream");
    }

    #[test]
    fn default_rig_is_the_scalar_channel_for() {
        // rig_for on a default setup must be exactly the rig every
        // committed artifact was produced under.
        let setup = TrialSetup::letter('I');
        let rig = rig_for(&setup);
        let mut want = channel_for(setup.tracker, setup.gamma_rad, setup.standoff_m);
        want.bystander = setup.bystander;
        assert_eq!(rig, want);
        assert_eq!(rig.polarimetry, Polarimetry::Scalar);
        assert_eq!(rig.tag, TagPolarization::Dipole);
    }

    #[test]
    fn with_channel_sets_rig_and_scene_consistently() {
        let setup = TrialSetup::letter('I').with_channel(ChannelMode::Jones);
        assert_eq!(setup.scene.channel, ChannelMode::Jones);
        assert_eq!(rig_for(&setup).polarimetry, Polarimetry::Jones);
        let rec = TrialSetup::letter('I').with_tag_mode(TagPolarization::Reconfigurable);
        assert_eq!(rig_for(&rec).tag, TagPolarization::Reconfigurable);
    }

    #[test]
    fn reader_pol_override_repolarizes_linear_rigs_only() {
        let circ_state = PolState::Circular { right_handed: true };
        let setup = TrialSetup::letter('I')
            .with_channel(ChannelMode::Jones)
            .with_reader_pol(circ_state);
        let rig = rig_for(&setup);
        for (i, ant) in rig.antennas.iter().enumerate() {
            // The mounted ±γ axis survives as the state's frame.
            let base = channel_for(setup.tracker, setup.gamma_rad, setup.standoff_m);
            let want_axis = base.antennas[i].linear_axis().unwrap();
            match ant.polarization {
                Polarization::Jones { axis, state } => {
                    assert_eq!(axis, want_axis);
                    assert_eq!(state, circ_state);
                }
                ref p => panic!("expected Jones pattern, got {p:?}"),
            }
        }
        // Circular baseline rigs are untouched by the override.
        let base = TrialSetup::letter('I')
            .with_tracker(TrackerKind::Tagoram2)
            .with_channel(ChannelMode::Jones)
            .with_reader_pol(circ_state);
        for ant in &rig_for(&base).antennas {
            assert_eq!(ant.polarization, Polarization::Circular);
        }
    }

    #[test]
    fn trials_are_deterministic() {
        let setup = TrialSetup::letter('I');
        let a = run_trial(&setup, 5);
        let b = run_trial(&setup, 5);
        assert_eq!(a.trail.points, b.trail.points);
        assert_eq!(a.reports, b.reports);
    }
}
