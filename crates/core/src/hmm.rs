//! HMM trajectory decoding (§3.5, Eqs. 8–11).
//!
//! The whiteboard is discretized into equal cells; the hidden state is
//! the cell containing the pen. Transitions (Eq. 8) are uniform over the
//! feasible annulus — displacement between `max_j |Δl_j|` and
//! `v_max·Δt`. Emissions (Eq. 11) weight a candidate cell by (a) how
//! well its theoretical inter-antenna phase difference matches the
//! measurement (the hyperbola constraint, Fig. 12(c)) and (b) how close
//! it lies to the ray from the previous cell along the estimated moving
//! direction (Fig. 12(b)). Viterbi then extracts the most likely cell
//! sequence; complexity is linear in steps × cells × annulus size, which
//! is what lets the paper claim real-time decoding on a mini PC.
//!
//! Implementation note: the paper multiplies two `1 − x/…` factors; we
//! score in log-space with configurable sharpness weights, which
//! preserves the ranking the paper's product induces while letting the
//! ablation benches explore the weighting (see DESIGN.md).
//!
//! ## Decoder performance
//!
//! The beam decoder is the dominant cost of the whole reproduction
//! (every accuracy experiment runs thousands of decodes), so its inner
//! loop is built around precomputation and flat memory:
//!
//! * [`EmissionTable`] caches `expected_dtheta21` per cell — it depends
//!   only on the cell centre, the antennas, and the wavelength, so one
//!   table (two 3-D norms per cell, built once) serves every
//!   (frontier × candidate) pair of every step of every decode on the
//!   same rig. [`DecodeArtifacts`] lifts the table (and the stencil
//!   store) to a process-wide `Arc` cache keyed by the rig fingerprint,
//!   so N concurrent sessions on one rig pay one row-parallel build and
//!   one table's memory (see DESIGN.md "Multi-session serving").
//! * [`AnnulusStencil`] replaces the per-frontier-cell
//!   [`Grid::neighbourhood`] `Vec` allocation with a radius-keyed table
//!   of `(dx, dy, ideal distance)` offsets; boundary clipping is pure
//!   index arithmetic.
//! * Backpointers live in flat `Vec<u32>` frames instead of a per-step
//!   `HashMap`, beam truncation uses `select_nth_unstable_by` instead of
//!   a full sort, and every buffer lives in a reusable
//!   [`DecoderScratch`] (one per thread by default) so steady-state
//!   decodes allocate nothing but the returned track.
//!
//! The optimized decoder is kept *exactly* output-equivalent to the
//! retained naive implementation, [`viterbi_reference`]: both perform
//! identical floating-point operations per candidate in identical order
//! and share one canonical beam total order (score descending, cell
//! index ascending), so `tests/decoder_equivalence.rs` can assert
//! bit-for-bit identical tracks. `cargo bench -p polardraw-bench
//! --bench decode` (or `scripts/bench.sh`) measures the speedup;
//! DESIGN.md's "Decoder performance" section keeps the numbers.
//!
//! Beyond the bit-exact default, [`KernelOptions`] opts into three
//! throughput levers: a fused `f32` inner loop driven by a per-step
//! transition plan and a cast [`EmissionTableF32`]
//! ([`KernelPrecision::F32Tolerance`]), a frontier-adaptive beam that
//! shrinks the kept beam on steps where the score mass concentrates
//! ([`AdaptiveBeam`]), and chunked intra-step frontier expansion over
//! `rf_core::par`'s claim-order fan-out. The frontier itself is stored
//! structure-of-arrays (cell and score vectors, not candidate tuples)
//! so the hot loops stream over flat `u32`/score lanes. The f64 path is
//! bit-identical to [`viterbi_reference`] at *any* thread count (chunks
//! are contiguous frontier ranges merged in chunk order under the same
//! first-wins tie rule); the f32/adaptive paths are instead gated by
//! the quantitative tolerance oracle in `tests/kernel_equivalence.rs`.

use crate::distance::{expected_dtheta21, DthetaRowKernel, DthetaRowKernelF32, FeasibleRegion};
use rf_core::{wrap_pi, Vec2, Vec3};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

/// A uniform cell grid over the board region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Minimum corner of the board region, metres.
    pub min: Vec2,
    /// Cell edge, metres.
    pub cell_m: f64,
    /// Cells along X.
    pub nx: usize,
    /// Cells along Y.
    pub ny: usize,
}

impl Grid {
    /// Build a grid covering `[min, max]` with the given cell size.
    pub fn covering(min: Vec2, max: Vec2, cell_m: f64) -> Grid {
        assert!(cell_m > 0.0, "cell size must be positive");
        assert!(max.x > min.x && max.y > min.y, "degenerate board region");
        let nx = ((max.x - min.x) / cell_m).ceil() as usize + 1;
        let ny = ((max.y - min.y) / cell_m).ceil() as usize + 1;
        Grid { min, cell_m, nx, ny }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true for `covering`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of cell `idx`.
    pub fn center(&self, idx: usize) -> Vec2 {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Vec2::new(
            self.min.x + (ix as f64 + 0.5) * self.cell_m,
            self.min.y + (iy as f64 + 0.5) * self.cell_m,
        )
    }

    /// Cell index containing a point (clamped to the grid).
    pub fn index_of(&self, p: Vec2) -> usize {
        let ix = (((p.x - self.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let iy = (((p.y - self.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        iy * self.nx + ix
    }

    /// Radius in whole cells a stencil must span to cover `radius`
    /// metres, clamped to the grid diagonal (no in-bounds pair of cells
    /// is farther apart, so a larger stencil could never match more).
    fn radius_cells(&self, radius: f64) -> i32 {
        let cap = f64::hypot(self.nx as f64, self.ny as f64).ceil();
        (radius / self.cell_m).ceil().clamp(0.0, cap) as i32
    }

    /// Indices of cells whose centres lie within `radius` of cell
    /// `from`'s centre.
    ///
    /// Implemented on [`AnnulusStencil`]: the scan covers exactly the
    /// `ceil(radius / cell)` square (the historical version visited one
    /// extra ring that could never pass the distance check), in the same
    /// row-major order, with the same `≤ radius + 1e-12` membership
    /// rule — so results are identical, minus the redundant ring. The
    /// decoder hot path uses cached stencils via [`DecoderScratch`]
    /// instead of this allocating convenience method.
    pub fn neighbourhood(&self, from: usize, radius: f64) -> Vec<usize> {
        let stencil = AnnulusStencil::new(self.cell_m, self.radius_cells(radius));
        let c = self.center(from);
        let ix0 = (from % self.nx) as i64;
        let iy0 = (from / self.nx) as i64;
        let mut out = Vec::new();
        for off in stencil.offsets() {
            if off.ideal_dist_m > radius + 1e-12 + STENCIL_MARGIN_M {
                continue;
            }
            let ix = ix0 + off.dx as i64;
            let iy = iy0 + off.dy as i64;
            if ix < 0 || iy < 0 || ix >= self.nx as i64 || iy >= self.ny as i64 {
                continue;
            }
            let idx = iy as usize * self.nx + ix as usize;
            if self.center(idx).distance(c) <= radius + 1e-12 {
                out.push(idx);
            }
        }
        out
    }
}

/// Per-step observation fed to the decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepObservation {
    /// Feasible displacement annulus (Eq. 8's bounds).
    pub region: FeasibleRegion,
    /// Estimated moving direction (unit), if any.
    pub direction: Option<Vec2>,
    /// Calibrated inter-antenna phase difference measurement, radians
    /// wrapped to `(−π, π]`, if both antennas reported.
    pub dtheta21: Option<f64>,
    /// Displacement estimate along the direction line, metres — the
    /// Fig. 12(b)×(c) intersection: each antenna's range change divided
    /// by the projection of its line-of-sight onto the moving direction.
    /// Falls back to the annulus lower bound when no direction is known.
    pub target_dist: f64,
}

/// Decoder tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmmConfig {
    /// Cell edge, metres (accuracy/runtime trade-off).
    pub cell_m: f64,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Log-score weight of the hyperbola term.
    pub hyperbola_weight: f64,
    /// Log-score weight of the direction-line term.
    pub direction_weight: f64,
    /// Multiplicative log-penalty for candidates *behind* the moving
    /// direction (Fig. 12(b) keeps only forward candidates).
    pub backward_penalty: f64,
    /// Log-score weight pulling the decoded displacement toward the
    /// phase-measured amount (the annulus lower bound). This is what
    /// keeps a still pen still and a moving pen moving at its measured
    /// speed despite cell quantization.
    pub distance_weight: f64,
    /// Distance weight used when *no* direction estimate exists for the
    /// step. Horizontal pen motion is nearly tangential to both
    /// antennas — per-antenna phases stay flat and the step classifies
    /// as "still" — but the inter-antenna difference Δθ^{2,1} still
    /// moves (its iso-lines run mostly vertically). A softer anchor
    /// lets the hyperbola term drag the track sideways in that regime.
    pub distance_weight_still: f64,
}

/// Beam width for the sparse Viterbi frontier (see [`viterbi`]).
pub const DEFAULT_BEAM_WIDTH: usize = 2500;

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig {
            cell_m: 0.0025,
            wavelength_m: 0.3276,
            hyperbola_weight: 10.0,
            direction_weight: 6.0,
            backward_penalty: 4.0,
            distance_weight: 5.0,
            distance_weight_still: 1.5,
        }
    }
}

/// ULP guard added on top of the exact `≤ radius + 1e-12` membership
/// epsilon when pre-filtering candidates on the *ideal* centre distance
/// `hypot(dx, dy)·cell`: actual centre differences deviate from the
/// ideal by a few ULPs of the board coordinates (≪ 1e-12 m), never by
/// this much. Offsets admitted by the prefilter still face the exact
/// per-cell check, so the stencil only ever over-approximates.
const STENCIL_MARGIN_M: f64 = 1e-9;

/// One candidate offset of an [`AnnulusStencil`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilOffset {
    /// Cell offset along X.
    pub dx: i32,
    /// Cell offset along Y.
    pub dy: i32,
    /// Ideal centre-to-centre distance `hypot(dx, dy)·cell`, metres.
    pub ideal_dist_m: f64,
}

/// A radius-keyed table of candidate cell offsets: every `(dx, dy)`
/// whose ideal centre distance can pass the `≤ r_cells·cell` membership
/// check, in the row-major `(dy, dx)` order the historical
/// [`Grid::neighbourhood`] scan used. Replaces a per-frontier-cell
/// `Vec<usize>` allocation (plus one `sqrt` per visited cell) with a
/// reusable flat table; boundary clipping happens by index arithmetic
/// at use time.
#[derive(Debug, Clone)]
pub struct AnnulusStencil {
    cell_m: f64,
    r_cells: i32,
    offsets: Vec<StencilOffset>,
}

impl AnnulusStencil {
    /// Build the stencil for `r_cells` whole cells of reach on a grid
    /// with `cell_m` cell edge.
    pub fn new(cell_m: f64, r_cells: i32) -> AnnulusStencil {
        assert!(cell_m > 0.0, "cell size must be positive");
        let r_cells = r_cells.max(0);
        let reach = r_cells as f64 * cell_m + 1e-12 + STENCIL_MARGIN_M;
        let mut offsets = Vec::new();
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let ideal = f64::hypot(dx as f64, dy as f64) * cell_m;
                if ideal <= reach {
                    offsets.push(StencilOffset { dx, dy, ideal_dist_m: ideal });
                }
            }
        }
        AnnulusStencil { cell_m, r_cells, offsets }
    }

    /// The candidate offsets, row-major by `(dy, dx)`.
    pub fn offsets(&self) -> &[StencilOffset] {
        &self.offsets
    }

    /// Cell edge this stencil was built for, metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Reach in whole cells.
    pub fn r_cells(&self) -> i32 {
        self.r_cells
    }
}

/// Per-cell cache of [`expected_dtheta21`]: the emission's hyperbola
/// term depends only on the cell centre, the antenna positions, and the
/// wavelength, so one table (two 3-D norms per cell, built once) serves
/// every (frontier × candidate) pair of every decode on the same rig.
/// Values are the *exact* bits `expected_dtheta21` returns.
#[derive(Debug, Clone)]
pub struct EmissionTable {
    grid: Grid,
    antennas: [Vec3; 2],
    wavelength_m: f64,
    values: Vec<f64>,
}

impl EmissionTable {
    /// Precompute the expected Δθ²¹ for every cell of `grid`.
    ///
    /// Runs row-batched over the SoA distance kernels
    /// ([`DthetaRowKernel`]): the cell-centre x coordinates are
    /// materialized once, each row hoists its `Δy²`/`Δz²` terms, and
    /// the per-cell `idx → (ix, iy)` divmod of [`Grid::center`]
    /// disappears entirely. Every cell's value is still **bit-identical**
    /// to `expected_dtheta21(grid.center(idx), …)` — the row kernel's
    /// contract, pinned by `emission_table_matches_direct_computation`
    /// below and `tests/channel_batch.rs`.
    pub fn build(grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> EmissionTable {
        let mut values = vec![0.0; grid.len()];
        if grid.nx > 0 {
            let xs = grid_xs(grid);
            let mut kernel = DthetaRowKernel::new();
            for (iy, row) in values.chunks_mut(grid.nx).enumerate() {
                let y = grid.min.y + (iy as f64 + 0.5) * grid.cell_m;
                kernel.row(&xs, y, antennas, wavelength_m, row);
            }
        }
        EmissionTable { grid: *grid, antennas, wavelength_m, values }
    }

    /// [`build`](Self::build) with the per-cell trig fanned out across
    /// grid rows on up to `threads` scoped workers
    /// ([`rf_core::parallel_map`]). Every cell's value is computed by
    /// the same call on the same inputs and rows are merged back in
    /// row-major order, so the result is **bit-for-bit identical** to
    /// the sequential build at any thread count — only the first
    /// session's cold-start wall time changes.
    ///
    /// The requested worker count is a *ceiling*, not a contract: it is
    /// clamped through [`build_threads_for`], so on a low-core host (or
    /// for a table too small to amortize thread spawns) the build falls
    /// back to the plain sequential loop instead of paying scope-spawn
    /// overhead for no parallelism — the cold-start regression
    /// BENCH_throughput.json used to carry (0.62× @8 threads on 1
    /// core). Benches that want to measure the fan-out itself use
    /// [`build_with_workers`](Self::build_with_workers).
    pub fn build_parallel(
        grid: &Grid,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        threads: usize,
    ) -> EmissionTable {
        let available =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let workers = build_threads_for(threads, available, grid.len());
        EmissionTable::build_with_workers(grid, antennas, wavelength_m, workers)
    }

    /// The row-parallel build with an *exact* worker count — no
    /// host-parallelism or table-size fallback. This is the primitive
    /// [`build_parallel`](Self::build_parallel) dispatches to after its
    /// [`build_threads_for`] clamp; tests use it to pin bit-identity at
    /// forced worker counts and benches to measure the true fan-out
    /// cost on any host.
    pub fn build_with_workers(
        grid: &Grid,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        workers: usize,
    ) -> EmissionTable {
        if workers.max(1) == 1 || grid.ny < 2 || grid.nx == 0 {
            return EmissionTable::build(grid, antennas, wavelength_m);
        }
        // Contiguous row bands written through disjoint `&mut` slices of
        // one preallocated buffer — no per-row `Vec` churn, no merge
        // copy (the 1.15×-at-2-threads ceiling the old
        // `parallel_map`-of-rows fan-out carried). Each cell's value
        // never depends on its band, so the result stays bit-identical
        // to the sequential build at any worker count.
        let nx = grid.nx;
        let workers = workers.min(grid.ny);
        let xs = grid_xs(grid);
        let mut values = vec![0.0; grid.len()];
        let mut bands: Vec<(usize, &mut [f64])> = Vec::with_capacity(workers);
        let mut rest: &mut [f64] = values.as_mut_slice();
        for w in 0..workers {
            let (lo, hi) = rf_core::chunk_bounds(grid.ny, workers, w);
            let (band, tail) = rest.split_at_mut((hi - lo) * nx);
            rest = tail;
            bands.push((lo, band));
        }
        std::thread::scope(|scope| {
            for (lo, band) in bands {
                let xs = &xs;
                scope.spawn(move || {
                    let mut kernel = DthetaRowKernel::new();
                    for (r, row) in band.chunks_mut(nx).enumerate() {
                        let y = grid.min.y + ((lo + r) as f64 + 0.5) * grid.cell_m;
                        kernel.row(xs, y, antennas, wavelength_m, row);
                    }
                });
            }
        });
        EmissionTable { grid: *grid, antennas, wavelength_m, values }
    }

    /// Whether this table was built for exactly this rig.
    pub fn matches(&self, grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> bool {
        self.grid == *grid && self.antennas == antennas && self.wavelength_m == wavelength_m
    }

    /// The cached `expected_dtheta21` of a cell.
    #[inline]
    pub fn expected(&self, cell: usize) -> f64 {
        self.values[cell]
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// [`EmissionTable`] cast to `f32` for the tolerance kernel: same grid,
/// same per-cell expected Δθ²¹, one rounding per cell. Always derived
/// from the exact table — the cast *is* the spec
/// (`table32[c] == table64[c] as f32`), so the f32 kernel's emission
/// error is exactly one rounding, never a different computation.
#[derive(Debug, Clone)]
pub struct EmissionTableF32 {
    values: Vec<f32>,
}

impl EmissionTableF32 {
    /// Cast every cell of an exact table.
    pub fn from_table(table: &EmissionTable) -> EmissionTableF32 {
        EmissionTableF32 { values: table.values.iter().map(|&v| v as f32).collect() }
    }

    /// Build the `f32` table *directly* over the single-precision row
    /// kernels ([`DthetaRowKernelF32`]) — no `f64` table first, and the
    /// distance sqrts run with twice the SIMD lanes. This is the
    /// `F32Tolerance`-tier build: per-cell values differ from the
    /// [`from_table`](Self::from_table) cast by ≲ 1e-5 rad (wrap-aware),
    /// gated by the emission-delta + fig13 letter-parity oracle in
    /// `tests/channel_batch.rs`. Opt-in only — the cast remains the
    /// spec and the default; nothing routes here except
    /// [`DecodeArtifacts::prewarm_f32_direct`] and the benches.
    pub fn build_direct(
        grid: &Grid,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        workers: usize,
    ) -> EmissionTableF32 {
        let mut values = vec![0.0f32; grid.len()];
        if grid.nx == 0 {
            return EmissionTableF32 { values };
        }
        let nx = grid.nx;
        let xs = grid_xs(grid);
        let workers = workers.max(1).min(grid.ny.max(1));
        if workers == 1 || grid.ny < 2 {
            let mut kernel = DthetaRowKernelF32::new();
            for (iy, row) in values.chunks_mut(nx).enumerate() {
                let y = grid.min.y + (iy as f64 + 0.5) * grid.cell_m;
                kernel.row(&xs, y, antennas, wavelength_m, row);
            }
            return EmissionTableF32 { values };
        }
        let mut bands: Vec<(usize, &mut [f32])> = Vec::with_capacity(workers);
        let mut rest: &mut [f32] = values.as_mut_slice();
        for w in 0..workers {
            let (lo, hi) = rf_core::chunk_bounds(grid.ny, workers, w);
            let (band, tail) = rest.split_at_mut((hi - lo) * nx);
            rest = tail;
            bands.push((lo, band));
        }
        std::thread::scope(|scope| {
            for (lo, band) in bands {
                let xs = &xs;
                scope.spawn(move || {
                    let mut kernel = DthetaRowKernelF32::new();
                    for (r, row) in band.chunks_mut(nx).enumerate() {
                        let y = grid.min.y + ((lo + r) as f64 + 0.5) * grid.cell_m;
                        kernel.row(xs, y, antennas, wavelength_m, row);
                    }
                });
            }
        });
        EmissionTableF32 { values }
    }

    /// The cast `expected_dtheta21` of a cell.
    #[inline]
    pub fn expected(&self, cell: usize) -> f32 {
        self.values[cell]
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Shared decode artifacts for one rig — the process-wide unit of
/// sharing behind multi-session serving.
///
/// Keyed by the config fingerprint that determines every cached value:
/// the grid (board extent + cell size), the two antenna positions, and
/// the wavelength — exactly the fields [`EmissionTable::matches`]
/// checks, and a subset of the fingerprint `polardraw.online.checkpoint.v1`
/// stores, so any checkpoint that restores against a config resolves to
/// the same artifact entry the original session used. The emission
/// table itself is built lazily (first step that carries a Δθ²¹
/// measurement) via `OnceLock`, row-parallel, and then shared by every
/// decoder on the rig through `Arc` — N sessions pay one build and one
/// table's memory instead of N.
#[derive(Debug)]
pub struct DecodeArtifacts {
    grid: Grid,
    antennas: [Vec3; 2],
    wavelength_m: f64,
    emission: OnceLock<Arc<EmissionTable>>,
    emission32: OnceLock<Arc<EmissionTableF32>>,
}

impl DecodeArtifacts {
    /// Whether this entry was built for exactly this rig (same
    /// equality rule as [`EmissionTable::matches`]).
    pub fn matches(&self, grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> bool {
        self.grid == *grid && self.antennas == antennas && self.wavelength_m == wavelength_m
    }

    /// The shared emission table, building it (row-parallel, bit-identical
    /// to the sequential build) on first use. Concurrent first callers
    /// race benignly: `OnceLock` keeps exactly one winner's table.
    pub fn emission(&self) -> &Arc<EmissionTable> {
        self.emission.get_or_init(|| {
            Arc::new(EmissionTable::build_parallel(
                &self.grid,
                self.antennas,
                self.wavelength_m,
                auto_build_threads(self.grid.len()),
            ))
        })
    }

    /// The shared emission table if some decoder already built it.
    pub fn emission_if_built(&self) -> Option<&Arc<EmissionTable>> {
        self.emission.get()
    }

    /// The shared f32 cast of the emission table (the tolerance
    /// kernel's lookup), building the exact table first if needed.
    /// Cast once process-wide, shared by `Arc` like the exact table.
    pub fn emission_f32(&self) -> &Arc<EmissionTableF32> {
        self.emission32.get_or_init(|| Arc::new(EmissionTableF32::from_table(self.emission())))
    }

    /// Force-build everything this entry serves lazily — the exact
    /// emission table and its `f32` cast — right now, on the calling
    /// thread. The fleet front door invokes this when a *new* rig
    /// fingerprint first appears, so the cold-start build happens at
    /// session-admission time instead of on the first session's first
    /// measurement-bearing drain.
    pub fn prewarm(&self) {
        let _ = self.emission_f32();
    }

    /// Opt this entry into the **direct** `f32` emission build
    /// ([`EmissionTableF32::build_direct`]) instead of the cast-of-f64
    /// default. Only effective before anything resolved
    /// [`emission_f32`](Self::emission_f32); returns whether the direct
    /// table won the slot. Tolerance-tier only — callers that need the
    /// cast contract must simply never call this.
    pub fn prewarm_f32_direct(&self, workers: usize) -> bool {
        self.emission32
            .set(Arc::new(EmissionTableF32::build_direct(
                &self.grid,
                self.antennas,
                self.wavelength_m,
                workers,
            )))
            .is_ok()
    }

    /// The grid this entry is keyed on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

/// The cell-centre x coordinates of every column, exactly as
/// [`Grid::center`] computes them — the shared SoA input of the
/// row-batched emission builds.
fn grid_xs(grid: &Grid) -> Vec<f64> {
    (0..grid.nx).map(|ix| grid.min.x + (ix as f64 + 0.5) * grid.cell_m).collect()
}

/// Cells below which the row-parallel emission build cannot amortize
/// its scoped thread spawns: a ~33k-cell letter-rig table builds in
/// well under a millisecond sequentially, the same order as spawning a
/// worker.
pub const PARALLEL_BUILD_MIN_CELLS: usize = 32_768;

/// The worker count the emission-table build actually uses, given a
/// `requested` thread budget, a host with `available` parallelism, and
/// a `cells`-cell table. Sequential (1) whenever the table is too small
/// to amortize a spawn; otherwise the request, clamped to the host —
/// fanning out past the hardware only adds spawn overhead, which is the
/// cold-start regression BENCH_throughput.json recorded before this
/// clamp (parallel build 0.62× sequential at 8 requested threads on a
/// 1-core host). Unit-tested directly; [`EmissionTable::build_parallel`]
/// feeds it the live `available_parallelism`.
pub fn build_threads_for(requested: usize, available: usize, cells: usize) -> usize {
    if cells < PARALLEL_BUILD_MIN_CELLS {
        return 1;
    }
    requested.max(1).min(available.max(1))
}

/// Worker count for the auto-built (artifact-cache) emission table: up
/// to 8 — the build is a few ms of trig, more workers is all spawn
/// overhead — clamped by host parallelism and table size.
fn auto_build_threads(cells: usize) -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    build_threads_for(8, available, cells)
}

/// Cap on distinct rigs retained by the process-wide artifact cache.
/// Real deployments see one rig (or a handful); experiment sweeps churn
/// through reduced-fidelity grids, so eviction first drops entries no
/// session holds anymore.
const ARTIFACT_CACHE_CAP: usize = 32;

fn artifact_cache() -> &'static Mutex<Vec<Arc<DecodeArtifacts>>> {
    static CACHE: OnceLock<Mutex<Vec<Arc<DecodeArtifacts>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide [`DecodeArtifacts`] entry for a rig, creating it on
/// first sight. Every decoder (batch scratch, [`FixedLagDecoder`],
/// every serve-pool session) resolves its rig through here, so all of
/// them end up holding the *same* `Arc` — `Arc::strong_count` on the
/// returned entry counts the sessions sharing it (plus the cache's own
/// reference), which is what `tests/serve.rs` asserts for the
/// memory-sublinearity guarantee.
pub fn artifacts_for(grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> Arc<DecodeArtifacts> {
    let mut cache = artifact_cache().lock().expect("artifact cache poisoned");
    if let Some(entry) = cache.iter().find(|a| a.matches(grid, antennas, wavelength_m)) {
        return Arc::clone(entry);
    }
    if cache.len() >= ARTIFACT_CACHE_CAP {
        // Drop rigs nobody references anymore; live sessions keep their
        // entries alive through their own Arcs either way.
        cache.retain(|a| Arc::strong_count(a) > 1);
        if cache.len() >= ARTIFACT_CACHE_CAP {
            cache.remove(0);
        }
    }
    let entry = Arc::new(DecodeArtifacts {
        grid: *grid,
        antennas,
        wavelength_m,
        emission: OnceLock::new(),
        emission32: OnceLock::new(),
    });
    cache.push(Arc::clone(&entry));
    entry
}

fn stencil_store() -> &'static Mutex<Vec<Arc<AnnulusStencil>>> {
    static STORE: OnceLock<Mutex<Vec<Arc<AnnulusStencil>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide shared stencil for `(cell_m, r_cells)`, building it
/// on first sight. Stencils are pure functions of their key, so every
/// scratch and every session on every thread shares one copy per radius
/// key instead of rebuilding (and separately storing) it per scratch.
pub fn shared_stencil(cell_m: f64, r_cells: i32) -> Arc<AnnulusStencil> {
    let r_cells = r_cells.max(0);
    let mut store = stencil_store().lock().expect("stencil store poisoned");
    if let Some(s) = store.iter().find(|s| s.cell_m() == cell_m && s.r_cells() == r_cells) {
        return Arc::clone(s);
    }
    if store.len() >= STENCIL_CACHE_CAP {
        store.retain(|s| Arc::strong_count(s) > 1);
        if store.len() >= STENCIL_CACHE_CAP {
            store.remove(0);
        }
    }
    let s = Arc::new(AnnulusStencil::new(cell_m, r_cells));
    store.push(Arc::clone(&s));
    s
}

/// Work counters from one decode, returned by [`viterbi_with_stats`]:
/// how much the decoder actually did, not just how long it took.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeStats {
    /// Observations decoded.
    pub steps: usize,
    /// Steps carried through unchanged because no candidate was
    /// feasible (inconsistent annulus / frontier collapse).
    pub carried_steps: usize,
    /// Candidate (frontier × annulus) pairs that entered scoring.
    pub expansions: u64,
    /// Candidates rejected by the hard annulus lower bound.
    pub pruned_below_min: u64,
    /// Scored cells dropped by beam truncation, summed over steps.
    pub pruned_beam: u64,
    /// Distinct cells scored, summed over steps.
    pub touched_cells: u64,
    /// Largest frontier entering any step.
    pub max_frontier: usize,
    /// Frontier sizes entering each step, summed.
    pub total_frontier: u64,
    /// Steps where the frontier-adaptive beam kept fewer cells than the
    /// plain beam truncation would have (0 unless [`AdaptiveBeam`] is
    /// enabled and actually engaged).
    pub adaptive_shrunk_steps: usize,
}

impl DecodeStats {
    /// Mean frontier size entering a step.
    pub fn mean_frontier(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_frontier as f64 / self.steps as f64
        }
    }
}

/// Cap on the process-wide shared stencil store (and on each scratch's
/// local memo of `Arc`s into it); decodes see a handful of distinct
/// radii, so this is only a guard against pathological inputs.
const STENCIL_CACHE_CAP: usize = 64;

/// Numeric precision of the beam kernel's inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPrecision {
    /// The bit-exact kernel: per-candidate `f64` scoring identical to
    /// [`viterbi_reference`], operation for operation. The default.
    F64Exact,
    /// The fused `f32` kernel: per-step transition scores are
    /// precomputed per stencil offset in `f64` and cast once (they
    /// depend only on the offset, not on the frontier cell), emissions
    /// come from a cast [`EmissionTableF32`], and the inner loop is
    /// pure `f32` adds/compares — no `hypot`, no division, no exact
    /// angle wrap. Output is *not* bitwise-comparable to the reference;
    /// `tests/kernel_equivalence.rs` gates it with a quantitative
    /// tolerance oracle instead.
    F32Tolerance,
}

/// Frontier-adaptive beam: shrink the kept beam below the configured
/// width on steps where the score mass concentrates.
///
/// After scoring, only cells within `margin` of the step's best score
/// are kept (never fewer than `min_keep`, never more than the
/// configured beam). On well-conditioned steps the posterior is sharply
/// unimodal — the surviving path rides near the top of the beam and the
/// tail the full beam drags along is pure decode cost; `margin` is the
/// log-score deficit at which a cell is considered unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBeam {
    /// Keep cells scoring within this log-score distance of the best.
    pub margin: f64,
    /// Never shrink the kept beam below this many cells.
    pub min_keep: usize,
}

impl Default for AdaptiveBeam {
    fn default() -> Self {
        AdaptiveBeam { margin: 8.0, min_keep: 128 }
    }
}

/// Beam-kernel configuration: inner-loop precision, adaptive beam, and
/// intra-step parallelism. The default is the bit-exact contract
/// (`F64Exact`, no adaptive shrink, single-threaded); every other
/// combination is an explicit opt-in that trades bitwise
/// reproducibility or beam completeness for speed, gated by the
/// tolerance harness in `tests/kernel_equivalence.rs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelOptions {
    /// Inner-loop precision.
    pub precision: KernelPrecision,
    /// Frontier-adaptive beam shrink, off by default.
    pub adaptive: Option<AdaptiveBeam>,
    /// Worker threads for chunked frontier expansion *within* one step
    /// (1 = sequential). Any value produces bit-identical output for a
    /// given precision: chunks are contiguous frontier ranges
    /// ([`rf_core::chunk_bounds`]) merged in chunk order under the same
    /// first-wins tie rule the sequential scan applies.
    pub threads: usize,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions { precision: KernelPrecision::F64Exact, adaptive: None, threads: 1 }
    }
}

impl KernelOptions {
    /// The bit-exact default kernel.
    pub fn exact() -> KernelOptions {
        KernelOptions::default()
    }

    /// The tolerance-gated fast kernel: `f32` inner loop plus the
    /// default adaptive beam, single-threaded.
    pub fn fast() -> KernelOptions {
        KernelOptions {
            precision: KernelPrecision::F32Tolerance,
            adaptive: Some(AdaptiveBeam::default()),
            threads: 1,
        }
    }

    /// This kernel with `threads` intra-step workers.
    pub fn with_threads(mut self, threads: usize) -> KernelOptions {
        self.threads = threads.max(1);
        self
    }

    /// This kernel with the given adaptive-beam setting.
    pub fn with_adaptive(mut self, adaptive: Option<AdaptiveBeam>) -> KernelOptions {
        self.adaptive = adaptive;
        self
    }
}

/// One stencil offset of the f32 kernel's per-step plan: everything
/// about the transition score that does not depend on the frontier cell
/// — the distance-consistency term, the direction-line term, and the
/// backward penalty are all functions of `(dx, dy)` alone — collapsed
/// into one fused `f32` addend computed once per step in `f64`.
#[derive(Debug, Clone, Copy)]
struct TransOffset32 {
    dx: i32,
    dy: i32,
    trans: f32,
}

/// `wrap_pi` for the f32 kernel: valid for inputs in `(−2π, 2π)` — the
/// range a difference of two wrapped angles can reach — using one
/// compare-and-subtract per side instead of the exact path's
/// `rem_euclid`. Maps onto `(−π, π]` like the exact wrap.
#[inline]
fn wrap_pi_f32(mut w: f32) -> f32 {
    if w > std::f32::consts::PI {
        w -= std::f32::consts::TAU;
    }
    if w <= -std::f32::consts::PI {
        w += std::f32::consts::TAU;
    }
    w
}

/// One worker's private buffers for chunked frontier expansion: a
/// contiguous frontier range plus chunk-local dense maps, a touched
/// list, and work counters. After the parallel scan the chunks are
/// merged in chunk index order under the same first-wins
/// strict-improvement rule the sequential scan applies, which makes the
/// chunked expansion bit-identical to the sequential one (see
/// `advance_frontier`).
#[derive(Debug, Default)]
struct ChunkScratch {
    lo: usize,
    hi: usize,
    scores: Vec<f64>,
    scores32: Vec<f32>,
    preds: Vec<u32>,
    touched: Vec<u32>,
    expansions: u64,
    pruned_below_min: u64,
}

/// Buffers of one beam step, shared by the batch scratch and the
/// streaming decoder (each owns one). Split out so `advance_frontier`
/// can borrow the whole kit in one piece alongside its owner's frontier
/// and backpointer buffers.
#[derive(Debug, Default)]
struct KernelScratch {
    /// Dense per-cell best score this step (`F64Exact`), reset via
    /// `touched`.
    scores: Vec<f64>,
    /// Dense per-cell best score this step (`F32Tolerance`).
    scores32: Vec<f32>,
    /// Dense per-cell best predecessor this step.
    preds: Vec<u32>,
    /// Cells written this step (the reset list).
    touched: Vec<u32>,
    /// Stencil offsets trimmed to the current step's radius.
    step_offsets: Vec<StencilOffset>,
    /// Fused per-offset transition scores of the f32 step plan.
    trans32: Vec<TransOffset32>,
    /// Offsets inside the annulus hard lower bound (f32 plan), kept so
    /// the work counters keep the exact kernel's meaning.
    rejected32: Vec<(i32, i32)>,
    /// Next beam under construction — cells only; their scores stay in
    /// the dense map until the beam is final (the SoA shape).
    next_cells: Vec<u32>,
    /// Per-chunk buffers for intra-step parallel expansion.
    chunks: Vec<ChunkScratch>,
    /// Radius-keyed local memo of [`shared_stencil`] handles — the hot
    /// loop resolves a radius without touching the global mutex.
    stencils: Vec<Arc<AnnulusStencil>>,
}

/// Reusable decode buffers and caches. [`viterbi_beam`] keeps one per
/// thread automatically; long-running callers (benches, servers) can
/// hold their own via [`viterbi_with_scratch`] so steady-state decodes
/// allocate nothing but the returned track. Also carries the scratch's
/// sticky [`KernelOptions`] selection (see [`set_kernel`](Self::set_kernel)).
#[derive(Debug, Default)]
pub struct DecoderScratch {
    /// Kernel configuration decodes through this scratch use.
    kernel: KernelOptions,
    /// Step-kernel buffers (dense maps, stencil trims, chunk slots).
    ks: KernelScratch,
    /// Current frontier, canonically ordered: cells …
    frontier_cells: Vec<u32>,
    /// … and their path scores, index-parallel (SoA).
    frontier_scores: Vec<f64>,
    /// Flat backpointer frames: cells …
    bp_cells: Vec<u32>,
    /// … their best predecessors …
    bp_prevs: Vec<u32>,
    /// … and each step's exclusive end offset into the two above.
    frame_ends: Vec<u32>,
    /// Shared artifacts of the rig this scratch last decoded.
    artifacts: Option<Arc<DecodeArtifacts>>,
}

impl DecoderScratch {
    /// Fresh, empty scratch (bit-exact default kernel).
    pub fn new() -> DecoderScratch {
        DecoderScratch::default()
    }

    /// The kernel decodes through this scratch use.
    pub fn kernel(&self) -> KernelOptions {
        self.kernel
    }

    /// Select the kernel for subsequent decodes through this scratch.
    pub fn set_kernel(&mut self, kernel: KernelOptions) {
        self.kernel = kernel;
    }
}

/// Find the locally memoized handle for `(cell_m, r_cells)`, going to
/// the process-wide [`shared_stencil`] store on a local miss — repeated
/// radius keys across sessions and trials are deduplicated once, not
/// per scratch.
fn cached_stencil(stencils: &mut Vec<Arc<AnnulusStencil>>, cell_m: f64, r_cells: i32) -> usize {
    if let Some(i) =
        stencils.iter().position(|s| s.cell_m() == cell_m && s.r_cells() == r_cells)
    {
        return i;
    }
    if stencils.len() >= STENCIL_CACHE_CAP {
        stencils.clear();
    }
    stencils.push(shared_stencil(cell_m, r_cells));
    stencils.len() - 1
}

/// The canonical beam total order both decoders share: score
/// descending, cell index ascending. Cell indices are unique, so this
/// is a strict total order — beam truncation and frontier iteration are
/// deterministic and implementation-independent.
fn beam_order(a: &(u32, f64), b: &(u32, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

thread_local! {
    /// Per-thread default scratch backing [`viterbi_beam`] /
    /// [`viterbi_with_stats`]: repeated decodes on a thread (every trial
    /// in `experiments::runner`) reuse buffers and caches for free.
    static THREAD_SCRATCH: RefCell<DecoderScratch> = RefCell::new(DecoderScratch::new());
}

/// Viterbi decoding of the cell sequence, with a sparse beam frontier.
///
/// * `grid` — the state space.
/// * `antenna_xy` — antenna positions projected on the board.
/// * `start` — initial position estimate (the paper bootstraps from an
///   arbitrary point on a measured hyperbola; relative trajectories are
///   evaluated Procrustes-style so the translation washes out).
/// * `steps` — one observation per window transition.
///
/// Exact Viterbi over the full grid would cost `steps × cells ×
/// annulus`; since the posterior is sharply unimodal (the pen is one
/// object), we keep only the best [`DEFAULT_BEAM_WIDTH`] cells per step.
/// This is the standard beam approximation; the paper's linear-time
/// claim (§3.5) corresponds to the same pruned regime.
///
/// Returns one position per step (the position *after* each step).
pub fn viterbi(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
) -> Vec<Vec2> {
    viterbi_beam(grid, antennas, start, steps, config, DEFAULT_BEAM_WIDTH)
}

/// [`viterbi`] with an explicit beam width (ablation hook).
pub fn viterbi_beam(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> Vec<Vec2> {
    viterbi_with_stats(grid, antennas, start, steps, config, beam_width).0
}

/// [`viterbi_beam`] plus [`DecodeStats`] work counters, using the
/// per-thread scratch.
pub fn viterbi_with_stats(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> (Vec<Vec2>, DecodeStats) {
    THREAD_SCRATCH.with(|s| {
        decode_optimized(grid, antennas, start, steps, config, beam_width, &mut s.borrow_mut())
    })
}

/// [`viterbi_with_stats`] against caller-held scratch, for callers that
/// want explicit control of buffer/cache lifetime (benches, services).
pub fn viterbi_with_scratch(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
    scratch: &mut DecoderScratch,
) -> (Vec<Vec2>, DecodeStats) {
    decode_optimized(grid, antennas, start, steps, config, beam_width, scratch)
}

/// [`viterbi_with_stats`] under an explicit [`KernelOptions`] — the
/// entry point for the tolerance kernels (benches, ablations, the
/// equivalence harness). Uses the per-thread scratch; its sticky kernel
/// selection is restored afterwards, so interleaved default-kernel
/// decodes on the same thread keep their bit-exact contract.
pub fn viterbi_with_kernel(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
    kernel: KernelOptions,
) -> (Vec<Vec2>, DecodeStats) {
    THREAD_SCRATCH.with(|s| {
        let mut scratch = s.borrow_mut();
        let saved = scratch.kernel();
        scratch.set_kernel(kernel);
        let out = decode_optimized(grid, antennas, start, steps, config, beam_width, &mut scratch);
        scratch.set_kernel(saved);
        out
    })
}

/// The optimized decoder core. Performs, per candidate, the *same*
/// floating-point operations in the *same* order as
/// [`viterbi_reference`] (the emission lookup returns the exact bits the
/// reference recomputes), processes frontiers in the same canonical
/// order, and applies the same membership/pruning rules — so its output
/// is bit-for-bit identical; only the bookkeeping around the arithmetic
/// differs.
#[allow(clippy::too_many_arguments)]
fn decode_optimized(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
    scratch: &mut DecoderScratch,
) -> (Vec<Vec2>, DecodeStats) {
    let mut stats = DecodeStats { steps: steps.len(), ..DecodeStats::default() };
    if steps.is_empty() {
        return (Vec::new(), stats);
    }
    let beam_width = beam_width.max(8);

    let DecoderScratch {
        kernel,
        ks,
        frontier_cells,
        frontier_scores,
        bp_cells,
        bp_prevs,
        frame_ends,
        artifacts,
    } = scratch;
    let kernel = *kernel;

    frontier_cells.clear();
    frontier_scores.clear();
    bp_cells.clear();
    bp_prevs.clear();
    frame_ends.clear();

    // Resolve (or reuse) the rig's shared emission table(s) only when a
    // step carries a hyperbola measurement; the tables are built once
    // process-wide and shared by Arc, not rebuilt per scratch.
    let mut emission: Option<&EmissionTable> = None;
    let mut emission32: Option<&EmissionTableF32> = None;
    if steps.iter().any(|o| o.dtheta21.is_some()) {
        let stale = artifacts
            .as_ref()
            .map_or(true, |a| !a.matches(grid, antennas, config.wavelength_m));
        if stale {
            *artifacts = Some(artifacts_for(grid, antennas, config.wavelength_m));
        }
        let arts = artifacts.as_ref().expect("artifacts resolved above");
        emission = Some(arts.emission().as_ref());
        if kernel.precision == KernelPrecision::F32Tolerance {
            emission32 = Some(arts.emission_f32().as_ref());
        }
    }

    frontier_cells.push(grid.index_of(start) as u32);
    frontier_scores.push(0.0);

    for obs in steps {
        advance_frontier(
            grid,
            antennas,
            config,
            beam_width,
            &kernel,
            obs,
            emission,
            emission32,
            ks,
            frontier_cells,
            frontier_scores,
            bp_cells,
            bp_prevs,
            frame_ends,
            &mut stats,
        );
    }

    // Backtrack from the best final state.
    let mut idx = best_frontier_cell(frontier_cells, frontier_scores);
    let mut rev = Vec::with_capacity(steps.len());
    for f in (0..frame_ends.len()).rev() {
        let lo = if f == 0 { 0 } else { frame_ends[f - 1] as usize };
        let hi = frame_ends[f] as usize;
        rev.push(grid.center(idx as usize));
        match bp_cells[lo..hi].iter().position(|&c| c == idx) {
            Some(k) => idx = bp_prevs[lo + k],
            None => break,
        }
    }
    rev.reverse();
    (rev, stats)
}

/// The backtrack root: the frontier cell with the maximal score,
/// resolving exact score ties to the *last* entry in canonical order —
/// the element `Iterator::max_by` returned on the historical
/// `(cell, score)` pair representation, preserved bit-for-bit.
fn best_frontier_cell(cells: &[u32], scores: &[f64]) -> u32 {
    let mut best: Option<(u32, f64)> = None;
    for (i, &c) in cells.iter().enumerate() {
        let s = scores[i];
        match best {
            Some((_, bs)) if bs.total_cmp(&s) == Ordering::Greater => {}
            _ => best = Some((c, s)),
        }
    }
    best.map(|(c, _)| c).unwrap_or(0)
}

/// Read-only scoring context of one step, shared by every expansion
/// variant (sequential or chunked).
struct StepCtx<'a> {
    grid: &'a Grid,
    antennas: [Vec3; 2],
    config: &'a HmmConfig,
    obs: &'a StepObservation,
    emission: Option<&'a EmissionTable>,
    exact_reach: f64,
    hard_min: f64,
    target: f64,
    dmax: f64,
}

/// The bit-exact `f64` expansion of one contiguous frontier range:
/// per-candidate arithmetic identical to [`viterbi_reference`],
/// operation for operation, writing dense maps under the first-wins
/// strict-improvement rule. Runs over the whole frontier (sequential)
/// or one chunk's range with chunk-local maps (parallel).
#[allow(clippy::too_many_arguments)]
fn expand_f64(
    ctx: &StepCtx<'_>,
    step_offsets: &[StencilOffset],
    frontier_cells: &[u32],
    frontier_scores: &[f64],
    scores: &mut [f64],
    preds: &mut [u32],
    touched: &mut Vec<u32>,
    expansions: &mut u64,
    pruned_below_min: &mut u64,
) {
    let grid = ctx.grid;
    let config = ctx.config;
    let obs = ctx.obs;
    let nx = grid.nx as i64;
    let ny = grid.ny as i64;
    for (i, &from) in frontier_cells.iter().enumerate() {
        let s_from = frontier_scores[i];
        let from_us = from as usize;
        let ix0 = (from_us % grid.nx) as i64;
        let iy0 = (from_us / grid.nx) as i64;
        // Same formula `Grid::center` uses, with the (ix, iy) we
        // already hold — identical bits, no div/mod per pair.
        let c_from = Vec2::new(
            grid.min.x + (ix0 as f64 + 0.5) * grid.cell_m,
            grid.min.y + (iy0 as f64 + 0.5) * grid.cell_m,
        );
        for off in step_offsets.iter() {
            let ix = ix0 + off.dx as i64;
            let iy = iy0 + off.dy as i64;
            if ix < 0 || iy < 0 || ix >= nx || iy >= ny {
                continue;
            }
            let to = iy as usize * grid.nx + ix as usize;
            let c_to = Vec2::new(
                grid.min.x + (ix as f64 + 0.5) * grid.cell_m,
                grid.min.y + (iy as f64 + 0.5) * grid.cell_m,
            );
            let delta = c_to - c_from;
            let d = delta.norm();
            if d > ctx.exact_reach {
                continue;
            }
            *expansions += 1;
            if d < ctx.hard_min {
                *pruned_below_min += 1;
                continue;
            }
            let mut s = s_from;
            // Hyperbola term (Fig. 12(c)).
            if let Some(meas) = obs.dtheta21 {
                let expected = match ctx.emission {
                    Some(table) => table.expected(to),
                    None => expected_dtheta21(c_to, ctx.antennas, config.wavelength_m),
                };
                let err = wrap_pi(meas - expected).abs() / std::f64::consts::PI;
                s -= config.hyperbola_weight * err;
            }
            // Distance-consistency term: decoded step length should
            // match the phase-measured displacement.
            let (d_along, w_dist) = match obs.direction {
                Some(dir) => (dir.dot(delta), config.distance_weight),
                None => (d, config.distance_weight_still),
            };
            s -= w_dist * ((d_along - ctx.target).abs() / ctx.dmax).min(2.0);
            // Direction-line term (Fig. 12(b)).
            if let Some(dir) = obs.direction {
                if d > 1e-12 {
                    let perp = dir.cross(delta).abs();
                    s -= config.direction_weight * (perp / ctx.dmax).min(2.0);
                    if dir.dot(delta) < 0.0 {
                        s -= config.backward_penalty;
                    }
                }
            }
            // Scores are always finite, so NEG_INFINITY marks
            // "untouched" on its own (same outcome as the
            // reference's joint (score, pred) sentinel check).
            let best = &mut scores[to];
            if *best == f64::NEG_INFINITY {
                touched.push(to as u32);
            }
            if s > *best {
                *best = s;
                preds[to] = from;
            }
        }
    }
}

/// Build the f32 kernel's per-step plan: for each prefilter-trimmed
/// stencil offset, either the fused transition score (distance +
/// direction + backward terms, none of which depend on the frontier
/// cell — computed once in `f64` on the *ideal* offset geometry, cast
/// once) or a rejection entry for offsets inside the annulus hard
/// lower bound. Offsets beyond the step's reach are dropped entirely,
/// mirroring the exact kernel's pre-count skip.
#[allow(clippy::too_many_arguments)]
fn build_f32_plan(
    config: &HmmConfig,
    obs: &StepObservation,
    cell_m: f64,
    step_offsets: &[StencilOffset],
    exact_reach: f64,
    hard_min: f64,
    target: f64,
    dmax: f64,
    trans32: &mut Vec<TransOffset32>,
    rejected32: &mut Vec<(i32, i32)>,
) {
    trans32.clear();
    rejected32.clear();
    for off in step_offsets.iter() {
        let d = off.ideal_dist_m;
        if d > exact_reach {
            continue;
        }
        if d < hard_min {
            rejected32.push((off.dx, off.dy));
            continue;
        }
        let delta = Vec2::new(off.dx as f64 * cell_m, off.dy as f64 * cell_m);
        let mut s = 0.0f64;
        let (d_along, w_dist) = match obs.direction {
            Some(dir) => (dir.dot(delta), config.distance_weight),
            None => (d, config.distance_weight_still),
        };
        s -= w_dist * ((d_along - target).abs() / dmax).min(2.0);
        if let Some(dir) = obs.direction {
            if d > 1e-12 {
                let perp = dir.cross(delta).abs();
                s -= config.direction_weight * (perp / dmax).min(2.0);
                if dir.dot(delta) < 0.0 {
                    s -= config.backward_penalty;
                }
            }
        }
        trans32.push(TransOffset32 { dx: off.dx, dy: off.dy, trans: s as f32 });
    }
}

/// The fused `f32` expansion of one contiguous frontier range: per
/// candidate, a bounds check, one table load, one add, and (for
/// hyperbola steps) a cast-table lookup with the cheap `f32` wrap — no
/// `hypot`, no division, no per-candidate geometry. The rejected-offset
/// pass keeps `expansions`/`pruned_below_min` meaning what they mean in
/// the exact kernel: in-bounds candidates seen, in-bounds candidates
/// under the hard annulus bound.
#[allow(clippy::too_many_arguments)]
fn expand_f32(
    grid: &Grid,
    hyper: Option<(f32, f32, &EmissionTableF32)>,
    trans32: &[TransOffset32],
    rejected32: &[(i32, i32)],
    frontier_cells: &[u32],
    frontier_scores: &[f64],
    scores32: &mut [f32],
    preds: &mut [u32],
    touched: &mut Vec<u32>,
    expansions: &mut u64,
    pruned_below_min: &mut u64,
) {
    let nx = grid.nx as i64;
    let ny = grid.ny as i64;
    let nxu = grid.nx;
    for (i, &from) in frontier_cells.iter().enumerate() {
        let from_us = from as usize;
        let ix0 = (from_us % nxu) as i64;
        let iy0 = (from_us / nxu) as i64;
        let s_from = frontier_scores[i] as f32;
        let mut seen = 0u64;
        for t in trans32.iter() {
            let ix = ix0 + t.dx as i64;
            let iy = iy0 + t.dy as i64;
            if ix < 0 || iy < 0 || ix >= nx || iy >= ny {
                continue;
            }
            seen += 1;
            let to = iy as usize * nxu + ix as usize;
            let mut s = s_from + t.trans;
            if let Some((meas, weight, table)) = hyper {
                let err = wrap_pi_f32(meas - table.expected(to)).abs()
                    * std::f32::consts::FRAC_1_PI;
                s -= weight * err;
            }
            let best = &mut scores32[to];
            if *best == f32::NEG_INFINITY {
                touched.push(to as u32);
            }
            if s > *best {
                *best = s;
                preds[to] = from;
            }
        }
        *expansions += seen;
        for &(dx, dy) in rejected32.iter() {
            let ix = ix0 + dx as i64;
            let iy = iy0 + dy as i64;
            if ix >= 0 && iy >= 0 && ix < nx && iy < ny {
                *expansions += 1;
                *pruned_below_min += 1;
            }
        }
    }
}

/// One Viterbi step over the sparse beam frontier: scores every
/// (frontier × stencil) candidate under the selected
/// [`KernelOptions`], truncates to the (possibly adaptive) beam under
/// the canonical order, appends exactly one flat backpointer frame to
/// `bp_cells`/`bp_prevs`/`frame_ends`, and installs the new frontier
/// into the SoA `frontier_cells`/`frontier_scores` pair. This is *the*
/// hot loop; both the batch decoder ([`decode_optimized`]) and the
/// streaming [`FixedLagDecoder`] call it, which is what keeps their
/// outputs bit-for-bit identical.
///
/// With `kernel.threads > 1` the frontier is split into contiguous
/// chunks ([`rf_core::chunk_bounds`]), expanded on scoped workers with
/// chunk-local dense maps, and merged in chunk index order under the
/// same strict-improvement (first-wins) rule the sequential scan
/// applies — so the merged maps, the touched order, and every counter
/// are bit-identical to the single-threaded expansion at any thread
/// count.
///
/// Does not touch `stats.steps` — callers own the step count.
#[allow(clippy::too_many_arguments)]
fn advance_frontier(
    grid: &Grid,
    antennas: [Vec3; 2],
    config: &HmmConfig,
    beam_width: usize,
    kernel: &KernelOptions,
    obs: &StepObservation,
    emission: Option<&EmissionTable>,
    emission32: Option<&EmissionTableF32>,
    ks: &mut KernelScratch,
    frontier_cells: &mut Vec<u32>,
    frontier_scores: &mut Vec<f64>,
    bp_cells: &mut Vec<u32>,
    bp_prevs: &mut Vec<u32>,
    frame_ends: &mut Vec<u32>,
    stats: &mut DecodeStats,
) {
    let n = grid.len();
    let KernelScratch {
        scores,
        scores32,
        preds,
        touched,
        step_offsets,
        trans32,
        rejected32,
        next_cells,
        chunks,
        stencils,
    } = ks;

    stats.total_frontier += frontier_cells.len() as u64;
    stats.max_frontier = stats.max_frontier.max(frontier_cells.len());

    let max_r = obs.region.max_dist.max(grid.cell_m);
    let dmax = max_r;
    let target = obs.target_dist.min(obs.region.max_dist);
    // Outlier suppression: a candidate well below the (already
    // noise-compensated) lower bound is rejected outright — Eq. 8's
    // hard annulus with generous quantization slack.
    let hard_min = obs.region.min_dist - 2.0 * grid.cell_m;
    // The exact membership rule `neighbourhood` applies, plus the
    // ULP-safe prefilter bound on the ideal offset distance.
    let exact_reach = max_r + 1e-12;
    let prefilter_reach = exact_reach + STENCIL_MARGIN_M;

    let si = cached_stencil(stencils, grid.cell_m, grid.radius_cells(max_r));
    // Trim the stencil to this step's radius once, so the per-pair
    // loop carries no prefilter branch.
    step_offsets.clear();
    step_offsets
        .extend(stencils[si].offsets().iter().filter(|o| o.ideal_dist_m <= prefilter_reach));

    let f32_kernel = kernel.precision == KernelPrecision::F32Tolerance;
    let hyper32 = if f32_kernel {
        build_f32_plan(
            config,
            obs,
            grid.cell_m,
            step_offsets,
            exact_reach,
            hard_min,
            target,
            dmax,
            trans32,
            rejected32,
        );
        obs.dtheta21.map(|m| {
            let table = emission32
                .expect("f32 kernel callers resolve the cast emission table for hyperbola steps");
            (m as f32, config.hyperbola_weight as f32, table)
        })
    } else {
        None
    };
    let ctx = StepCtx {
        grid,
        antennas,
        config,
        obs,
        emission,
        exact_reach,
        hard_min,
        target,
        dmax,
    };

    // Size the main dense maps (only the lanes the precision uses).
    if f32_kernel {
        if scores32.len() < n {
            scores32.resize(n, f32::NEG_INFINITY);
        }
    } else if scores.len() < n {
        scores.resize(n, f64::NEG_INFINITY);
    }
    if preds.len() < n {
        preds.resize(n, u32::MAX);
    }

    let workers = kernel.threads.max(1).min(frontier_cells.len().max(1));
    if workers > 1 {
        // Chunked intra-step expansion over scoped workers.
        if chunks.len() < workers {
            chunks.resize_with(workers, ChunkScratch::default);
        }
        for (i, chunk) in chunks.iter_mut().enumerate().take(workers) {
            let (lo, hi) = rf_core::chunk_bounds(frontier_cells.len(), workers, i);
            chunk.lo = lo;
            chunk.hi = hi;
            chunk.expansions = 0;
            chunk.pruned_below_min = 0;
            if f32_kernel {
                if chunk.scores32.len() < n {
                    chunk.scores32.resize(n, f32::NEG_INFINITY);
                }
            } else if chunk.scores.len() < n {
                chunk.scores.resize(n, f64::NEG_INFINITY);
            }
            if chunk.preds.len() < n {
                chunk.preds.resize(n, u32::MAX);
            }
        }
        {
            let fc: &[u32] = frontier_cells;
            let fs: &[f64] = frontier_scores;
            let so: &[StencilOffset] = step_offsets;
            let t32: &[TransOffset32] = trans32;
            let r32: &[(i32, i32)] = rejected32;
            rf_core::parallel_for_each_mut(&mut chunks[..workers], workers, |chunk| {
                let cells = &fc[chunk.lo..chunk.hi];
                let cell_scores = &fs[chunk.lo..chunk.hi];
                if f32_kernel {
                    expand_f32(
                        grid,
                        hyper32,
                        t32,
                        r32,
                        cells,
                        cell_scores,
                        &mut chunk.scores32,
                        &mut chunk.preds,
                        &mut chunk.touched,
                        &mut chunk.expansions,
                        &mut chunk.pruned_below_min,
                    );
                } else {
                    expand_f64(
                        &ctx,
                        so,
                        cells,
                        cell_scores,
                        &mut chunk.scores,
                        &mut chunk.preds,
                        &mut chunk.touched,
                        &mut chunk.expansions,
                        &mut chunk.pruned_below_min,
                    );
                }
            });
        }
        // Deterministic merge: chunk index order with the strict `>`
        // improvement rule — exactly the first-wins tie behaviour of
        // the sequential frontier scan over the same contiguous
        // ranges, so maps, touched order, and counters all match the
        // single-threaded expansion bit-for-bit. Chunk entries are
        // reset during the merge, leaving every chunk clean.
        for chunk in chunks.iter_mut().take(workers) {
            stats.expansions += chunk.expansions;
            stats.pruned_below_min += chunk.pruned_below_min;
            if f32_kernel {
                for &c in chunk.touched.iter() {
                    let cu = c as usize;
                    let s = chunk.scores32[cu];
                    let best = &mut scores32[cu];
                    if *best == f32::NEG_INFINITY {
                        touched.push(c);
                    }
                    if s > *best {
                        *best = s;
                        preds[cu] = chunk.preds[cu];
                    }
                    chunk.scores32[cu] = f32::NEG_INFINITY;
                    chunk.preds[cu] = u32::MAX;
                }
            } else {
                for &c in chunk.touched.iter() {
                    let cu = c as usize;
                    let s = chunk.scores[cu];
                    let best = &mut scores[cu];
                    if *best == f64::NEG_INFINITY {
                        touched.push(c);
                    }
                    if s > *best {
                        *best = s;
                        preds[cu] = chunk.preds[cu];
                    }
                    chunk.scores[cu] = f64::NEG_INFINITY;
                    chunk.preds[cu] = u32::MAX;
                }
            }
            chunk.touched.clear();
        }
    } else if f32_kernel {
        expand_f32(
            grid,
            hyper32,
            trans32,
            rejected32,
            frontier_cells,
            frontier_scores,
            scores32,
            preds,
            touched,
            &mut stats.expansions,
            &mut stats.pruned_below_min,
        );
    } else {
        expand_f64(
            &ctx,
            step_offsets,
            frontier_cells,
            frontier_scores,
            scores,
            preds,
            touched,
            &mut stats.expansions,
            &mut stats.pruned_below_min,
        );
    }

    if touched.is_empty() {
        // Inconsistent step: carry the frontier through unchanged.
        stats.carried_steps += 1;
        for &c in frontier_cells.iter() {
            bp_cells.push(c);
            bp_prevs.push(c);
        }
        frame_ends.push(bp_cells.len() as u32);
        return;
    }
    stats.touched_cells += touched.len() as u64;

    next_cells.clear();
    next_cells.extend_from_slice(touched);

    // Effective beam: the configured width, shrunk to the within-margin
    // set when the adaptive beam is on and the score mass concentrates.
    let mut eff_beam = beam_width;
    if let Some(adaptive) = kernel.adaptive {
        let within = if f32_kernel {
            let best = next_cells
                .iter()
                .map(|&c| scores32[c as usize])
                .fold(f32::NEG_INFINITY, f32::max);
            let floor = best - adaptive.margin as f32;
            next_cells.iter().filter(|&&c| scores32[c as usize] >= floor).count()
        } else {
            let best = next_cells
                .iter()
                .map(|&c| scores[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
            let floor = best - adaptive.margin;
            next_cells.iter().filter(|&&c| scores[c as usize] >= floor).count()
        };
        let kept = within.max(adaptive.min_keep).min(beam_width);
        if kept < next_cells.len().min(beam_width) {
            stats.adaptive_shrunk_steps += 1;
        }
        eff_beam = kept;
    }

    // Keep the top `eff_beam` states under the canonical order (score
    // descending via the dense map, cell index ascending): an O(n)
    // partition plus a sort of the kept beam. The comparator reads the
    // dense score lanes directly — the SoA shape; for f32 the compare
    // happens on the f32 lane (`total_cmp` over the cast scores orders
    // identically to comparing their exact f64 embeddings).
    if f32_kernel {
        let lane: &[f32] = scores32;
        let cmp = |a: &u32, b: &u32| {
            lane[*b as usize].total_cmp(&lane[*a as usize]).then_with(|| a.cmp(b))
        };
        if next_cells.len() > eff_beam {
            stats.pruned_beam += (next_cells.len() - eff_beam) as u64;
            next_cells.select_nth_unstable_by(eff_beam - 1, cmp);
            next_cells.truncate(eff_beam);
        }
        next_cells.sort_unstable_by(cmp);
    } else {
        let lane: &[f64] = scores;
        let cmp = |a: &u32, b: &u32| {
            lane[*b as usize].total_cmp(&lane[*a as usize]).then_with(|| a.cmp(b))
        };
        if next_cells.len() > eff_beam {
            stats.pruned_beam += (next_cells.len() - eff_beam) as u64;
            next_cells.select_nth_unstable_by(eff_beam - 1, cmp);
            next_cells.truncate(eff_beam);
        }
        next_cells.sort_unstable_by(cmp);
    }

    // Flat backpointer frame in canonical beam order; install the new
    // SoA frontier from the dense lanes, then reset the lanes.
    frontier_cells.clear();
    frontier_scores.clear();
    for &c in next_cells.iter() {
        let cu = c as usize;
        bp_cells.push(c);
        bp_prevs.push(preds[cu]);
        frontier_cells.push(c);
        frontier_scores.push(if f32_kernel { scores32[cu] as f64 } else { scores[cu] });
    }
    frame_ends.push(bp_cells.len() as u32);
    for &c in touched.iter() {
        let cu = c as usize;
        if f32_kernel {
            scores32[cu] = f32::NEG_INFINITY;
        } else {
            scores[cu] = f64::NEG_INFINITY;
        }
        preds[cu] = u32::MAX;
    }
    touched.clear();
    next_cells.clear();
}

/// One retained backpointer frame of a [`FixedLagDecoder`]: the beam
/// cells of one step (canonically ordered) and, parallel to them, each
/// cell's best-predecessor *grid cell* in the previous frame (for
/// carried frames, the identity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BeamFrame {
    /// Beam cells after this step.
    pub cells: Vec<u32>,
    /// Best predecessor cell of each beam cell.
    pub prevs: Vec<u32>,
}

/// Streaming Viterbi with a fixed decision lag and bounded memory.
///
/// Feed one [`StepObservation`] at a time with [`step`](Self::step);
/// the decoder retains at most `lag` backpointer frames. Whenever a
/// step would exceed the lag, the *oldest* frame is resolved — the
/// current best path is traced back to it and its cell centre is
/// committed — and the frame is freed (recycled into an internal
/// pool). [`finish`](Self::finish) backtracks over the still-retained
/// frames exactly like the batch decoder and appends that tail to the
/// committed prefix.
///
/// With `lag ≥ steps` nothing commits early and the output is
/// **bit-for-bit identical** to [`viterbi_beam`] / [`viterbi_reference`]:
/// each step runs the same [`advance_frontier`] hot loop (same
/// [`EmissionTable`] / [`AnnulusStencil`] machinery, same canonical
/// beam order) and the final backtrack is the same code shape over the
/// same frames. With a finite lag the decoder trades a bounded amount
/// of hindsight for O(lag × beam) memory — the online operating mode.
///
/// Unlike the batch entry points this struct *owns* its buffers (it
/// must be checkpointable and survive across calls), so it does not
/// use the thread-local [`DecoderScratch`].
#[derive(Debug)]
pub struct FixedLagDecoder {
    grid: Grid,
    antennas: [Vec3; 2],
    config: HmmConfig,
    beam_width: usize,
    lag: usize,
    kernel: KernelOptions,
    // Logical (checkpointed) state: the SoA frontier …
    frontier_cells: Vec<u32>,
    frontier_scores: Vec<f64>,
    frames: std::collections::VecDeque<BeamFrame>,
    committed: Vec<Vec2>,
    stats: DecodeStats,
    // Scratch (reconstructible) state.
    ks: KernelScratch,
    bp_cells: Vec<u32>,
    bp_prevs: Vec<u32>,
    frame_ends: Vec<u32>,
    pool: Vec<BeamFrame>,
    artifacts: Option<Arc<DecodeArtifacts>>,
}

impl FixedLagDecoder {
    /// New decoder starting at `start`, with `lag` retained frames
    /// (`usize::MAX` = never commit early, i.e. exact batch behaviour).
    pub fn new(
        grid: Grid,
        antennas: [Vec3; 2],
        start: Vec2,
        config: HmmConfig,
        beam_width: usize,
        lag: usize,
    ) -> FixedLagDecoder {
        let frontier = vec![(grid.index_of(start) as u32, 0.0)];
        FixedLagDecoder::from_parts(
            grid,
            antennas,
            config,
            beam_width,
            lag,
            frontier,
            Vec::new(),
            Vec::new(),
            DecodeStats::default(),
        )
    }

    /// Rebuild a decoder from checkpointed logical state (scratch state
    /// is reconstructed lazily, bit-identically, on the next step).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        grid: Grid,
        antennas: [Vec3; 2],
        config: HmmConfig,
        beam_width: usize,
        lag: usize,
        frontier: Vec<(u32, f64)>,
        frames: Vec<BeamFrame>,
        committed: Vec<Vec2>,
        stats: DecodeStats,
    ) -> FixedLagDecoder {
        let (frontier_cells, frontier_scores) = frontier.into_iter().unzip();
        FixedLagDecoder {
            grid,
            antennas,
            config,
            beam_width: beam_width.max(8),
            lag: lag.max(1),
            kernel: KernelOptions::default(),
            frontier_cells,
            frontier_scores,
            frames: frames.into(),
            committed,
            stats,
            ks: KernelScratch::default(),
            bp_cells: Vec::new(),
            bp_prevs: Vec::new(),
            frame_ends: Vec::new(),
            pool: Vec::new(),
            artifacts: None,
        }
    }

    /// Consume one observation; returns how many points were committed
    /// (0 while within the lag, 1 once the pipeline is full).
    pub fn step(&mut self, obs: &StepObservation) -> usize {
        // Resolve (or reuse) the rig's shared emission table(s) only
        // when the step carries a hyperbola measurement — same laziness
        // rule as the batch decoder, same bits either way (the table
        // caches the exact values `expected_dtheta21` returns). N
        // concurrent sessions on one rig resolve to one process-wide
        // table.
        let f32_kernel = self.kernel.precision == KernelPrecision::F32Tolerance;
        let (emission, emission32): (Option<&EmissionTable>, Option<&EmissionTableF32>) =
            if obs.dtheta21.is_some() {
                let stale = self.artifacts.as_ref().map_or(true, |a| {
                    !a.matches(&self.grid, self.antennas, self.config.wavelength_m)
                });
                if stale {
                    self.artifacts =
                        Some(artifacts_for(&self.grid, self.antennas, self.config.wavelength_m));
                }
                let arts = self.artifacts.as_ref().expect("artifacts resolved above");
                (
                    Some(arts.emission().as_ref()),
                    if f32_kernel { Some(arts.emission_f32().as_ref()) } else { None },
                )
            } else {
                (None, None)
            };

        self.stats.steps += 1;
        self.bp_cells.clear();
        self.bp_prevs.clear();
        self.frame_ends.clear();
        advance_frontier(
            &self.grid,
            self.antennas,
            &self.config,
            self.beam_width,
            &self.kernel,
            obs,
            emission,
            emission32,
            &mut self.ks,
            &mut self.frontier_cells,
            &mut self.frontier_scores,
            &mut self.bp_cells,
            &mut self.bp_prevs,
            &mut self.frame_ends,
            &mut self.stats,
        );
        // Move the single new flat frame into the retained deque,
        // recycling a pooled frame's buffers when available.
        let mut frame = self.pool.pop().unwrap_or_default();
        frame.cells.clear();
        frame.cells.extend_from_slice(&self.bp_cells);
        frame.prevs.clear();
        frame.prevs.extend_from_slice(&self.bp_prevs);
        self.frames.push_back(frame);

        let mut newly_committed = 0;
        while self.frames.len() > self.lag {
            self.commit_oldest();
            newly_committed += 1;
        }
        newly_committed
    }

    /// Resolve and free the oldest retained frame: trace the current
    /// best path back to it and commit its cell centre. Mirrors one
    /// ring of the batch backtrack; the `None` arm matches the batch
    /// `break` (which silently truncates the earliest points) and is
    /// unreachable for frames this decoder built itself.
    fn commit_oldest(&mut self) {
        let mut idx = best_frontier_cell(&self.frontier_cells, &self.frontier_scores);
        let mut reached = true;
        for f in (1..self.frames.len()).rev() {
            match self.frames[f].cells.iter().position(|&c| c == idx) {
                Some(k) => idx = self.frames[f].prevs[k],
                None => {
                    reached = false;
                    break;
                }
            }
        }
        if reached {
            self.committed.push(self.grid.center(idx as usize));
        }
        if let Some(frame) = self.frames.pop_front() {
            self.pool.push(frame);
        }
    }

    /// Backtrack the retained frames (identical code shape to the batch
    /// decoders) and return `committed ++ tail`; the decoder is left
    /// empty. With `lag ≥ steps` this is the whole batch output.
    pub fn finish(&mut self) -> Vec<Vec2> {
        let mut idx = best_frontier_cell(&self.frontier_cells, &self.frontier_scores);
        let mut rev = Vec::with_capacity(self.frames.len());
        for f in (0..self.frames.len()).rev() {
            rev.push(self.grid.center(idx as usize));
            match self.frames[f].cells.iter().position(|&c| c == idx) {
                Some(k) => idx = self.frames[f].prevs[k],
                None => break,
            }
        }
        rev.reverse();
        let mut out = std::mem::take(&mut self.committed);
        out.extend(rev);
        self.frames.clear();
        out
    }

    /// Work counters so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Points already committed (beyond the lag horizon).
    pub fn committed(&self) -> &[Vec2] {
        &self.committed
    }

    /// Current frontier, canonically ordered, assembled from the SoA
    /// lanes as `(cell, score)` pairs (the checkpoint shape).
    pub fn frontier(&self) -> Vec<(u32, f64)> {
        self.frontier_cells
            .iter()
            .copied()
            .zip(self.frontier_scores.iter().copied())
            .collect()
    }

    /// The kernel this decoder steps with.
    pub fn kernel(&self) -> KernelOptions {
        self.kernel
    }

    /// Select the kernel for subsequent steps. Safe at any step
    /// boundary: the dense lanes are reset between steps, and the
    /// frontier scores carry across precisions (f32 scores embed
    /// exactly in the f64 lane).
    pub fn set_kernel(&mut self, kernel: KernelOptions) {
        self.kernel = kernel;
    }

    /// Change the decision lag for subsequent steps (clamped to ≥ 1).
    /// Safe at any step boundary: shrinking resolves the now-over-lag
    /// oldest frames immediately — exactly the commits the next `step`
    /// calls would have produced — and returns how many points that
    /// committed; growing simply lets more frames accumulate before
    /// commits resume.
    pub fn set_lag(&mut self, lag: usize) -> usize {
        self.lag = lag.max(1);
        let mut newly_committed = 0;
        while self.frames.len() > self.lag {
            self.commit_oldest();
            newly_committed += 1;
        }
        newly_committed
    }

    /// Retained (uncommitted) backpointer frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &BeamFrame> {
        self.frames.iter()
    }

    /// Number of retained frames (≤ lag).
    pub fn retained(&self) -> usize {
        self.frames.len()
    }

    /// The decision lag, in steps.
    pub fn lag(&self) -> usize {
        self.lag
    }

    /// The beam width.
    pub fn beam_width(&self) -> usize {
        self.beam_width
    }

    /// The shared rig artifacts this decoder resolved, if any step has
    /// needed them yet (tests use this to assert N sessions share one
    /// entry).
    pub fn artifacts(&self) -> Option<&Arc<DecodeArtifacts>> {
        self.artifacts.as_ref()
    }

    /// The shared emission table this decoder decodes against, if built.
    pub fn emission_table(&self) -> Option<&Arc<EmissionTable>> {
        self.artifacts.as_ref().and_then(|a| a.emission_if_built())
    }
}

/// The retained naive reference decoder: per-frontier-cell
/// [`Grid::neighbourhood`] allocation, per-candidate
/// [`expected_dtheta21`] recomputation, `HashMap` backpointers, and a
/// full frontier sort — the seed implementation, kept verbatim except
/// that beam truncation uses the same canonical total order (score
/// descending, cell ascending) as the optimized decoder, making the two
/// comparable state-for-state. `tests/decoder_equivalence.rs` asserts
/// [`viterbi_beam`] matches this function bit-for-bit; the `decode`
/// bench suite measures the speedup over it.
pub fn viterbi_reference(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> Vec<Vec2> {
    if steps.is_empty() {
        return Vec::new();
    }
    let beam_width = beam_width.max(8);
    let n = grid.len();
    // Frontier: (cell, score) pairs; backpointer log per step.
    let mut frontier: Vec<(u32, f64)> = vec![(grid.index_of(start) as u32, 0.0)];
    let mut backptr: Vec<std::collections::HashMap<u32, u32>> = Vec::with_capacity(steps.len());
    // Dense scratch (score, backpointer) reused across steps; `touched`
    // tracks which entries to reset, keeping each step O(frontier ×
    // annulus) instead of O(cells).
    let mut dense: Vec<(f64, u32)> = vec![(f64::NEG_INFINITY, u32::MAX); n];
    let mut touched: Vec<u32> = Vec::new();

    for obs in steps {
        let max_r = obs.region.max_dist.max(grid.cell_m);
        let dmax = max_r;
        let target = obs.target_dist.min(obs.region.max_dist);
        // Outlier suppression: a candidate well below the (already
        // noise-compensated) lower bound is rejected outright — Eq. 8's
        // hard annulus with generous quantization slack.
        let hard_min = obs.region.min_dist - 2.0 * grid.cell_m;

        for &(from, s_from) in &frontier {
            let c_from = grid.center(from as usize);
            for to in grid.neighbourhood(from as usize, max_r) {
                let c_to = grid.center(to);
                let delta = c_to - c_from;
                let d = delta.norm();
                if d < hard_min {
                    continue;
                }
                let mut s = s_from;
                // Hyperbola term (Fig. 12(c)).
                if let Some(meas) = obs.dtheta21 {
                    let expected = expected_dtheta21(c_to, antennas, config.wavelength_m);
                    let err = wrap_pi(meas - expected).abs() / std::f64::consts::PI;
                    s -= config.hyperbola_weight * err;
                }
                // Distance-consistency term: decoded step length should
                // match the phase-measured displacement.
                let (d_along, w_dist) = match obs.direction {
                    Some(dir) => (dir.dot(delta), config.distance_weight),
                    None => (d, config.distance_weight_still),
                };
                s -= w_dist * ((d_along - target).abs() / dmax).min(2.0);
                // Direction-line term (Fig. 12(b)).
                if let Some(dir) = obs.direction {
                    if d > 1e-12 {
                        let perp = dir.cross(delta).abs();
                        s -= config.direction_weight * (perp / dmax).min(2.0);
                        if dir.dot(delta) < 0.0 {
                            s -= config.backward_penalty;
                        }
                    }
                }
                let entry = &mut dense[to];
                if entry.0 == f64::NEG_INFINITY && entry.1 == u32::MAX {
                    touched.push(to as u32);
                }
                if s > entry.0 {
                    *entry = (s, from);
                }
            }
        }

        if touched.is_empty() {
            // Inconsistent step: carry the frontier through unchanged.
            let bp: std::collections::HashMap<u32, u32> =
                frontier.iter().map(|&(c, _)| (c, c)).collect();
            backptr.push(bp);
            continue;
        }

        let mut next: Vec<(u32, f64)> =
            touched.iter().map(|&c| (c, dense[c as usize].0)).collect();
        // Keep the top `beam_width` states (canonical order).
        next.sort_unstable_by(beam_order);
        next.truncate(beam_width);
        let bp: std::collections::HashMap<u32, u32> = next
            .iter()
            .map(|&(c, _)| (c, dense[c as usize].1))
            .collect();
        backptr.push(bp);
        for &c in &touched {
            dense[c as usize] = (f64::NEG_INFINITY, u32::MAX);
        }
        touched.clear();
        frontier = next;
    }

    // Backtrack from the best final state.
    let mut idx = frontier
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(c, _)| c)
        .unwrap_or(0);
    let mut rev = Vec::with_capacity(steps.len());
    for bp in backptr.iter().rev() {
        rev.push(grid.center(idx as usize));
        match bp.get(&idx) {
            Some(&prev) => idx = prev,
            None => break,
        }
    }
    rev.reverse();
    rev
}

/// Eq. 10: rotate a trajectory about its first point by `−error_rad`
/// to undo the residual initial-azimuth error.
pub fn rotate_trajectory(points: &[Vec2], error_rad: f64) -> Vec<Vec2> {
    let pivot = match points.first() {
        Some(&p) => p,
        None => return Vec::new(),
    };
    let rot = rf_core::Mat2::rotation(-error_rad);
    points.iter().map(|&p| pivot + rot.apply(p - pivot)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(0.2, 0.1), 0.01)
    }

    fn rig() -> [Vec3; 2] {
        [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)]
    }

    #[test]
    fn grid_indexing_round_trips() {
        let g = small_grid();
        for idx in [0, 5, g.len() - 1, g.nx + 3] {
            let c = g.center(idx);
            assert_eq!(g.index_of(c), idx);
        }
    }

    #[test]
    fn grid_clamps_out_of_range_points() {
        let g = small_grid();
        let idx = g.index_of(Vec2::new(-5.0, -5.0));
        assert_eq!(idx, 0);
        let idx = g.index_of(Vec2::new(5.0, 5.0));
        assert_eq!(idx, g.len() - 1);
    }

    #[test]
    fn neighbourhood_radius_is_respected() {
        let g = small_grid();
        let from = g.index_of(Vec2::new(0.1, 0.05));
        let hood = g.neighbourhood(from, 0.02);
        assert!(hood.contains(&from));
        for &idx in &hood {
            assert!(g.center(idx).distance(g.center(from)) <= 0.02 + 1e-9);
        }
        // 2-cell radius: at most a 5×5 patch.
        assert!(hood.len() <= 25);
    }

    #[test]
    fn neighbourhood_clips_at_edges() {
        let g = small_grid();
        let hood = g.neighbourhood(0, 0.02);
        assert!(!hood.is_empty());
        assert!(hood.iter().all(|&i| i < g.len()));
    }

    /// The stencil-backed `neighbourhood` must reproduce the historical
    /// brute-force scan (which visited one extra, always-empty ring)
    /// exactly — same cells, same row-major order.
    #[test]
    fn neighbourhood_matches_bruteforce_scan() {
        let g = small_grid();
        for radius in [0.0, 0.004, 0.01, 0.0173, 0.02, 0.033, 0.5] {
            for from in [0, 7, g.nx - 1, g.len() / 2, g.len() - 1] {
                let c = g.center(from);
                let r_cells = (radius / g.cell_m).ceil() as isize + 1;
                let ix0 = (from % g.nx) as isize;
                let iy0 = (from / g.nx) as isize;
                let mut want = Vec::new();
                for dy in -r_cells..=r_cells {
                    for dx in -r_cells..=r_cells {
                        let ix = ix0 + dx;
                        let iy = iy0 + dy;
                        if ix < 0 || iy < 0 || ix >= g.nx as isize || iy >= g.ny as isize {
                            continue;
                        }
                        let idx = iy as usize * g.nx + ix as usize;
                        if g.center(idx).distance(c) <= radius + 1e-12 {
                            want.push(idx);
                        }
                    }
                }
                assert_eq!(
                    g.neighbourhood(from, radius),
                    want,
                    "radius {radius} from {from}"
                );
            }
        }
    }

    #[test]
    fn stencil_covers_square_and_trims_corners() {
        let st = AnnulusStencil::new(0.01, 4);
        // Full square is 81; the four far corners (|dx|=|dy|=4,
        // distance 4√2 ≈ 5.66 cells) must be trimmed.
        assert!(st.offsets().len() < 81);
        assert!(st.offsets().iter().any(|o| o.dx == 0 && o.dy == -4));
        assert!(!st.offsets().iter().any(|o| o.dx == 4 && o.dy == 4));
        // Row-major order: dy strictly non-decreasing.
        for w in st.offsets().windows(2) {
            assert!(w[0].dy <= w[1].dy);
        }
    }

    #[test]
    fn emission_table_matches_direct_computation() {
        let g = small_grid();
        let table = EmissionTable::build(&g, rig(), 0.3276);
        assert_eq!(table.len(), g.len());
        assert!(!table.is_empty());
        for idx in [0, 3, g.len() / 2, g.len() - 1] {
            let direct = expected_dtheta21(g.center(idx), rig(), 0.3276);
            assert_eq!(table.expected(idx).to_bits(), direct.to_bits(), "cell {idx}");
        }
        assert!(table.matches(&g, rig(), 0.3276));
        assert!(!table.matches(&g, rig(), 0.33));
    }

    #[test]
    fn parallel_table_build_is_bit_identical() {
        // `build_with_workers` pins the exact worker count (the small
        // test grid is below `PARALLEL_BUILD_MIN_CELLS`, so
        // `build_parallel` would silently run sequentially and make
        // this vacuous).
        let g = small_grid();
        let seq = EmissionTable::build(&g, rig(), 0.3276);
        for workers in [1, 2, 3, 8] {
            let par = EmissionTable::build_with_workers(&g, rig(), 0.3276, workers);
            assert_eq!(par.len(), seq.len(), "workers={workers}");
            for idx in 0..g.len() {
                assert_eq!(
                    par.expected(idx).to_bits(),
                    seq.expected(idx).to_bits(),
                    "cell {idx}, workers={workers}"
                );
            }
        }
        // The clamped entry point stays bit-identical too (it resolves
        // to the sequential build here).
        let clamped = EmissionTable::build_parallel(&g, rig(), 0.3276, 8);
        for idx in 0..g.len() {
            assert_eq!(clamped.expected(idx).to_bits(), seq.expected(idx).to_bits());
        }
    }

    /// Pins the cold-start fallback decision (BENCH_throughput.json
    /// showed the 8-thread build at 0.62× sequential on a 1-core host):
    /// small tables and low available parallelism must build
    /// sequentially.
    #[test]
    fn build_threads_for_falls_back_when_parallelism_cannot_pay() {
        let big = PARALLEL_BUILD_MIN_CELLS;
        // Table below the threshold: always sequential, however many
        // cores and threads are on offer.
        assert_eq!(build_threads_for(8, 8, big - 1), 1);
        assert_eq!(build_threads_for(64, 64, 231), 1);
        // One hardware thread: spawning workers only adds overhead.
        assert_eq!(build_threads_for(8, 1, big), 1);
        // Plenty of cells and cores: the request is honoured…
        assert_eq!(build_threads_for(8, 8, big), 8);
        assert_eq!(build_threads_for(3, 8, big), 3);
        // …but clamped to what the host actually has.
        assert_eq!(build_threads_for(8, 2, big), 2);
        // Degenerate requests clamp to 1, never 0.
        assert_eq!(build_threads_for(0, 4, big), 1);
        assert_eq!(build_threads_for(4, 0, big), 1);
    }

    #[test]
    fn emission_table_f32_is_the_cast_of_the_f64_table() {
        let g = small_grid();
        let table = EmissionTable::build(&g, rig(), 0.3276);
        let t32 = EmissionTableF32::from_table(&table);
        assert_eq!(t32.len(), table.len());
        assert!(!t32.is_empty());
        for idx in 0..g.len() {
            assert_eq!(t32.expected(idx).to_bits(), (table.expected(idx) as f32).to_bits());
        }
    }

    #[test]
    fn exact_kernel_with_threads_matches_sequential_bitwise() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        for beam in [2usize, 64, 2500] {
            let (want, want_stats) = viterbi_with_stats(&g, rig(), start, &steps, &cfg, beam);
            for threads in [1usize, 2, 8] {
                let kernel = KernelOptions::exact().with_threads(threads);
                let (got, got_stats) =
                    viterbi_with_kernel(&g, rig(), start, &steps, &cfg, beam, kernel);
                assert_eq!(got.len(), want.len(), "beam {beam} threads {threads}");
                for (a, b) in got.iter().zip(&want) {
                    assert!(
                        a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                        "beam {beam} threads {threads}: {a:?} vs {b:?}"
                    );
                }
                assert_eq!(got_stats, want_stats, "beam {beam} threads {threads}");
            }
        }
    }

    #[test]
    fn f32_kernel_stays_on_the_board_and_near_the_exact_track() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        let (exact, _) = viterbi_with_stats(&g, rig(), start, &steps, &cfg, 256);
        let kernel = KernelOptions {
            precision: KernelPrecision::F32Tolerance,
            adaptive: None,
            threads: 1,
        };
        let (got, stats) = viterbi_with_kernel(&g, rig(), start, &steps, &cfg, 256, kernel);
        assert_eq!(got.len(), exact.len());
        assert_eq!(stats.steps, steps.len());
        // Smoke-level closeness; the quantitative oracle lives in
        // tests/kernel_equivalence.rs.
        for (a, b) in got.iter().zip(&exact) {
            assert!(a.distance(*b) < 0.03, "f32 drifted: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn adaptive_beam_shrinks_concentrated_frontiers_and_reports_it() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        let (want, base) = viterbi_with_stats(&g, rig(), start, &steps, &cfg, 2500);
        let kernel = KernelOptions::exact()
            .with_adaptive(Some(AdaptiveBeam { margin: 0.25, min_keep: 4 }));
        let (got, stats) = viterbi_with_kernel(&g, rig(), start, &steps, &cfg, 2500, kernel);
        assert!(stats.adaptive_shrunk_steps > 0, "tight margin must shrink: {stats:?}");
        assert!(stats.max_frontier <= 2500);
        assert!(stats.max_frontier < base.max_frontier, "shrink must be visible");
        // A strong direction prior concentrates mass on the true path,
        // so even an aggressive margin keeps the same track end.
        assert_eq!(got.len(), want.len());
        assert!(got.last().unwrap().distance(*want.last().unwrap()) < 0.02);
    }

    #[test]
    fn artifacts_cache_shares_one_entry_per_rig() {
        let g = small_grid();
        let a = artifacts_for(&g, rig(), 0.3276);
        let b = artifacts_for(&g, rig(), 0.3276);
        assert!(Arc::ptr_eq(&a, &b), "same rig resolves to the same entry");
        // The emission table is built once and shared by pointer.
        assert!(Arc::ptr_eq(a.emission(), b.emission()));
        assert_eq!(
            a.emission().expected(3).to_bits(),
            expected_dtheta21(g.center(3), rig(), 0.3276).to_bits()
        );
        // A different rig gets its own entry.
        let other = artifacts_for(&g, rig(), 0.33);
        assert!(!Arc::ptr_eq(&a, &other));
        assert!(other.matches(&g, rig(), 0.33) && !other.matches(&g, rig(), 0.3276));
    }

    #[test]
    fn shared_stencils_deduplicate_across_callers() {
        let a = shared_stencil(0.01, 3);
        let b = shared_stencil(0.01, 3);
        assert!(Arc::ptr_eq(&a, &b), "same key resolves to the same stencil");
        assert_eq!(a.offsets(), AnnulusStencil::new(0.01, 3).offsets());
        let c = shared_stencil(0.01, 4);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    fn moving_step(min_dist: f64, max_dist: f64, dir: Option<Vec2>) -> StepObservation {
        StepObservation {
            region: FeasibleRegion { min_dist, max_dist },
            direction: dir,
            dtheta21: None,
            target_dist: min_dist,
        }
    }

    #[test]
    fn direction_prior_drives_a_straight_track() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let dir = Vec2::new(1.0, 0.0);
        // Phase measures ~8 mm of motion per step along `dir`.
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(dir))).collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), 10);
        let end = track.last().unwrap();
        assert!(end.x > start.x + 0.05, "track must progress rightward, got {end:?}");
        assert!((end.y - start.y).abs() < 0.02, "and stay level");
    }

    #[test]
    fn annulus_lower_bound_forces_motion() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let steps: Vec<StepObservation> = (0..5)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.009, max_dist: 0.012 },
                direction: Some(Vec2::new(1.0, 0.0)),
                dtheta21: None,
                target_dist: 0.009,
            })
            .collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        for w in track.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d > 0.004, "lower bound must prevent standing still, step {d}");
        }
    }

    #[test]
    fn hyperbola_term_pulls_toward_consistent_cells() {
        let g = Grid::covering(Vec2::new(-0.1, 0.55), Vec2::new(0.1, 0.75), 0.01);
        let rig = rig();
        let cfg = HmmConfig::default();
        let target = Vec2::new(0.06, 0.65);
        let meas = expected_dtheta21(target, rig, cfg.wavelength_m);
        // No direction prior; generous annulus; repeated consistent
        // measurements should walk the track onto the target hyperbola.
        let steps: Vec<StepObservation> = (0..12)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.01, max_dist: 0.015 },
                direction: None,
                dtheta21: Some(meas),
                target_dist: 0.01,
            })
            .collect();
        let track = viterbi(&g, rig, Vec2::new(-0.05, 0.65), &steps, &cfg);
        let end = *track.last().unwrap();
        let end_err = wrap_pi(expected_dtheta21(end, rig, cfg.wavelength_m) - meas).abs();
        let start_err =
            wrap_pi(expected_dtheta21(Vec2::new(-0.05, 0.65), rig, cfg.wavelength_m) - meas)
                .abs();
        assert!(
            end_err < start_err * 0.5,
            "end phase error {end_err} should beat start {start_err}"
        );
    }

    #[test]
    fn empty_steps_give_empty_track() {
        let g = small_grid();
        assert!(viterbi(&g, rig(), Vec2::ZERO, &[], &HmmConfig::default()).is_empty());
        let (track, stats) =
            viterbi_with_stats(&g, rig(), Vec2::ZERO, &[], &HmmConfig::default(), 64);
        assert!(track.is_empty());
        assert_eq!(stats, DecodeStats::default());
    }

    #[test]
    fn inconsistent_annulus_does_not_derail_decoding() {
        let g = small_grid();
        let start = Vec2::new(0.05, 0.05);
        let mut steps: Vec<StepObservation> =
            (0..4).map(|_| moving_step(0.006, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        // Impossible step: min > max (a spurious reading survived).
        steps.insert(
            2,
            StepObservation {
                region: FeasibleRegion { min_dist: 0.08, max_dist: 0.012 },
                direction: None,
                dtheta21: None,
                target_dist: 0.012,
            },
        );
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), steps.len(), "decoder must survive the bad step");
        // The carried-through step is visible in the work counters.
        let (_, stats) =
            viterbi_with_stats(&g, rig(), start, &steps, &HmmConfig::default(), 64);
        assert_eq!(stats.steps, steps.len());
        assert_eq!(stats.carried_steps, 1);
    }

    #[test]
    fn optimized_matches_reference_on_scenarios() {
        let g = small_grid();
        let rig = rig();
        let cfg = HmmConfig::default();
        let meas = expected_dtheta21(Vec2::new(0.06, 0.05), rig, cfg.wavelength_m);
        let scenarios: Vec<(Vec<StepObservation>, usize)> = vec![
            ((0..10).map(|_| moving_step(0.008, 0.012, Some(Vec2::new(1.0, 0.0)))).collect(), 2500),
            ((0..6).map(|_| moving_step(0.0, 0.02, None)).collect(), 16),
            (
                (0..8)
                    .map(|i| StepObservation {
                        region: FeasibleRegion { min_dist: 0.004, max_dist: 0.015 },
                        direction: if i % 2 == 0 { Some(Vec2::from_angle(i as f64)) } else { None },
                        dtheta21: Some(meas),
                        target_dist: 0.006,
                    })
                    .collect(),
                1, // exercises the beam_width < 8 clamp
            ),
        ];
        for (steps, beam) in scenarios {
            let fast = viterbi_beam(&g, rig, Vec2::new(0.02, 0.05), &steps, &cfg, beam);
            let slow = viterbi_reference(&g, rig, Vec2::new(0.02, 0.05), &steps, &cfg, beam);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                    "beam {beam}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn stats_count_decoder_work() {
        let g = small_grid();
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        let (track, stats) =
            viterbi_with_stats(&g, rig(), Vec2::new(0.02, 0.05), &steps, &HmmConfig::default(), 64);
        assert_eq!(track.len(), 10);
        assert_eq!(stats.steps, 10);
        assert_eq!(stats.carried_steps, 0);
        assert!(stats.expansions > 0);
        assert!(stats.touched_cells > 0);
        assert!(stats.max_frontier >= 1 && stats.max_frontier <= 64);
        assert!(stats.mean_frontier() >= 1.0);
        // Every scored candidate either survived or was pruned.
        assert!(stats.expansions >= stats.pruned_below_min + stats.touched_cells);
    }

    /// Scratch caches (stencils, emission table) must invalidate
    /// correctly when the rig or grid changes between calls.
    #[test]
    fn scratch_reuse_across_rigs_is_sound() {
        let mut scratch = DecoderScratch::new();
        let cfg = HmmConfig::default();
        let g1 = small_grid();
        let g2 = Grid::covering(Vec2::new(-0.1, 0.55), Vec2::new(0.1, 0.75), 0.008);
        let rig1 = rig();
        let rig2 = [Vec3::new(-0.4, 0.1, 0.5), Vec3::new(0.4, 0.1, 0.5)];
        let mk = |g: &Grid, r: [Vec3; 2]| -> Vec<StepObservation> {
            let meas = expected_dtheta21(g.center(g.len() / 2), r, cfg.wavelength_m);
            (0..6)
                .map(|_| StepObservation {
                    region: FeasibleRegion { min_dist: 0.004, max_dist: 0.012 },
                    direction: None,
                    dtheta21: Some(meas),
                    target_dist: 0.005,
                })
                .collect()
        };
        for (g, r) in [(&g1, rig1), (&g2, rig2), (&g1, rig1), (&g1, rig2)] {
            let steps = mk(g, r);
            let start = g.center(0);
            let (warm, _) =
                viterbi_with_scratch(g, r, start, &steps, &cfg, 128, &mut scratch);
            let (cold, _) =
                viterbi_with_scratch(g, r, start, &steps, &cfg, 128, &mut DecoderScratch::new());
            assert_eq!(warm, cold);
            assert_eq!(warm, viterbi_reference(g, r, start, &steps, &cfg, 128));
        }
    }

    /// Mixed scenario steps for streaming tests: direction priors,
    /// hyperbola measurements, a still step, and an impossible annulus.
    fn mixed_steps() -> Vec<StepObservation> {
        let g = small_grid();
        let meas = expected_dtheta21(Vec2::new(0.06, 0.05), rig(), 0.3276);
        let mut steps: Vec<StepObservation> = (0..9)
            .map(|i| StepObservation {
                region: FeasibleRegion { min_dist: 0.004, max_dist: 0.014 },
                direction: if i % 3 == 0 { Some(Vec2::from_angle(i as f64 * 0.7)) } else { None },
                dtheta21: if i % 2 == 0 { Some(meas) } else { None },
                target_dist: 0.006,
            })
            .collect();
        steps.insert(
            4,
            StepObservation {
                region: FeasibleRegion { min_dist: 0.09, max_dist: 0.01 },
                direction: None,
                dtheta21: None,
                target_dist: 0.01,
            },
        );
        let _ = g;
        steps
    }

    #[test]
    fn fixed_lag_with_infinite_lag_matches_batch_bitwise() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        for beam in [4usize, 64, 2500] {
            let (batch, batch_stats) =
                viterbi_with_stats(&g, rig(), start, &steps, &cfg, beam);
            let mut dec = FixedLagDecoder::new(g, rig(), start, cfg, beam, usize::MAX);
            for obs in &steps {
                assert_eq!(dec.step(obs), 0, "infinite lag must never commit early");
            }
            let stream_stats = dec.stats();
            let stream = dec.finish();
            assert_eq!(stream.len(), batch.len());
            for (a, b) in stream.iter().zip(&batch) {
                assert!(
                    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                    "beam {beam}: {a:?} vs {b:?}"
                );
            }
            assert_eq!(stream_stats, batch_stats, "work counters must agree");
        }
    }

    #[test]
    fn fixed_lag_commits_incrementally_with_bounded_frames() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        let lag = 3;
        let mut dec = FixedLagDecoder::new(g, rig(), start, cfg, 64, lag);
        let mut committed = 0;
        for (i, obs) in steps.iter().enumerate() {
            committed += dec.step(obs);
            assert!(dec.retained() <= lag, "frames bounded by lag");
            let expect = (i + 1).saturating_sub(lag);
            assert_eq!(committed, expect, "one commit per step past the lag");
            assert_eq!(dec.committed().len(), committed);
        }
        let track = dec.finish();
        assert_eq!(track.len(), steps.len());
        // The committed prefix is frozen: finish() must not rewrite it.
        let (batch, _) = viterbi_with_stats(&g, rig(), start, &steps, &cfg, 64);
        assert_eq!(track.len(), batch.len());
    }

    #[test]
    fn fixed_lag_restores_from_parts_and_continues_bitwise() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        let lag = 4;
        // Uninterrupted run.
        let mut full = FixedLagDecoder::new(g, rig(), start, cfg, 32, lag);
        for obs in &steps {
            full.step(obs);
        }
        let want = full.finish();
        // Cut at every point, clone logical state through from_parts.
        for cut in 0..=steps.len() {
            let mut a = FixedLagDecoder::new(g, rig(), start, cfg, 32, lag);
            for obs in &steps[..cut] {
                a.step(obs);
            }
            let mut b = FixedLagDecoder::from_parts(
                g,
                rig(),
                cfg,
                32,
                lag,
                a.frontier().to_vec(),
                a.frames().cloned().collect(),
                a.committed().to_vec(),
                a.stats(),
            );
            for obs in &steps[cut..] {
                b.step(obs);
            }
            let got = b.finish();
            assert_eq!(got.len(), want.len(), "cut {cut}");
            for (p, q) in got.iter().zip(&want) {
                assert!(
                    p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
                    "cut {cut}: {p:?} vs {q:?}"
                );
            }
        }
    }

    #[test]
    fn rotate_trajectory_pivots_on_first_point() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(2.0, 1.0)];
        let rot = rotate_trajectory(&pts, std::f64::consts::FRAC_PI_2);
        assert_eq!(rot[0], pts[0], "pivot is fixed");
        // Rotating by −π/2 (cw on screen) maps +X offset to −Y... in our
        // y-down convention: (x=0, y=−1) offset.
        assert!((rot[1].x - 1.0).abs() < 1e-12);
        assert!((rot[1].y - 0.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_empty_trajectory() {
        assert!(rotate_trajectory(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_grid_panics() {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(-1.0, 1.0), 0.01);
    }
}
