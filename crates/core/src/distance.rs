//! Movement distance estimation (§3.4, Eqs. 5–7).
//!
//! Phase deltas bound the per-window displacement from below (triangle
//! inequality against each antenna's range change) while the maximum
//! writing speed bounds it from above, defining the annular *feasible
//! region* of Fig. 12(a). The inter-antenna phase difference adds the
//! hyperbola constraint of Fig. 12(c): the pen must lie where the
//! range *difference* to the two antennas matches the measured
//! `Δθ^{2,1}` up to the 2kπ ambiguity.

use rf_core::{wrap_pi, Vec2, Vec3};

/// Tuning for distance estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceConfig {
    /// Carrier wavelength λ, metres.
    pub wavelength_m: f64,
    /// Maximum pen speed v_max, m/s (paper: 0.2).
    pub vmax_mps: f64,
    /// Phase-noise allowance subtracted from each |Δθ| before it enters
    /// the lower bound, radians. Without it, measurement noise alone
    /// would force the decoder to move every window even for a still
    /// pen (the paper's reader averages more reads per window than the
    /// noise floor of ours; this keeps the bound meaningful).
    pub noise_margin_rad: f64,
}

impl Default for DistanceConfig {
    fn default() -> Self {
        DistanceConfig { wavelength_m: 0.3276, vmax_mps: 0.2, noise_margin_rad: 0.10 }
    }
}

/// The feasible displacement annulus for one timestep (Fig. 12(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibleRegion {
    /// Lower bound: `max_j |Δl_j|`, metres.
    pub min_dist: f64,
    /// Upper bound: `v_max · Δt`, metres.
    pub max_dist: f64,
}

impl FeasibleRegion {
    /// Whether a displacement magnitude is inside the annulus.
    pub fn contains(&self, dist: f64) -> bool {
        dist >= self.min_dist - 1e-12 && dist <= self.max_dist + 1e-12
    }

    /// Whether the region is non-empty (`min ≤ max`). An empty region
    /// means the phase moved faster than v_max allows — evidence of a
    /// spurious reading that survived pre-processing.
    pub fn is_consistent(&self) -> bool {
        self.min_dist <= self.max_dist
    }
}

/// Eq. 5: convert a per-antenna phase delta (radians, wrapped) into a
/// range change, metres.
pub fn range_delta(dtheta: f64, wavelength_m: f64) -> f64 {
    wrap_pi(dtheta) * wavelength_m / (4.0 * std::f64::consts::PI)
}

/// Compute the feasible annulus from both antennas' phase deltas over a
/// window of `dt` seconds.
pub fn feasible_region(dth: [Option<f64>; 2], dt: f64, config: &DistanceConfig) -> FeasibleRegion {
    let min_dist = dth
        .iter()
        .flatten()
        .map(|&d| {
            let denoised = (wrap_pi(d).abs() - config.noise_margin_rad).max(0.0);
            range_delta(denoised, config.wavelength_m).abs()
        })
        .fold(0.0, f64::max);
    FeasibleRegion { min_dist, max_dist: config.vmax_mps * dt }
}

/// The best single displacement estimate from the phase deltas: the
/// largest noise-compensated |Δl_j| (a lower bound on true displacement;
/// the residual scale bias washes out in Procrustes evaluation).
pub fn displacement_estimate(dth: [Option<f64>; 2], config: &DistanceConfig) -> f64 {
    feasible_region(dth, f64::INFINITY, config).min_dist
}

/// In-plane gradient of the 3-D range `‖p − a_j‖` with the pen on the
/// board plane (z = 0): moving the pen by board vector `v` changes the
/// range by `g_j · v`. Unlike a unit direction, `‖g_j‖ < 1` when the
/// antenna stands off the board — the out-of-plane component of the
/// line of sight does not respond to in-plane motion.
pub fn range_gradient(antenna: Vec3, from: Vec2) -> Vec2 {
    let p = from.with_z(0.0);
    let delta = p - antenna;
    let l = delta.norm();
    if l < 1e-9 {
        Vec2::ZERO
    } else {
        Vec2::new(delta.x / l, delta.y / l)
    }
}

/// Displacement estimate *along a known moving direction* — the
/// Fig. 12(b)×(c) intersection. Each antenna measures the range rate
/// `Δl_j = d · (g_j · dir)`; dividing by the projection recovers `d`.
/// Only antennas whose range gradient projects at least `min_projection`
/// onto the direction contribute (a near-tangential antenna amplifies
/// noise instead of information); falls back to the plain lower bound
/// when neither qualifies.
pub fn directional_displacement(
    dth: [Option<f64>; 2],
    antennas: [Vec3; 2],
    from: Vec2,
    dir: Vec2,
    config: &DistanceConfig,
) -> f64 {
    const MIN_PROJECTION: f64 = 0.3;
    let mut best = 0.0_f64;
    for j in 0..2 {
        let Some(d) = dth[j] else { continue };
        let g = range_gradient(antennas[j], from);
        let proj = g.dot(dir).abs();
        if proj < MIN_PROJECTION {
            continue;
        }
        let denoised = (wrap_pi(d).abs() - config.noise_margin_rad).max(0.0);
        let dl = range_delta(denoised, config.wavelength_m).abs();
        best = best.max(dl / proj);
    }
    best.max(displacement_estimate(dth, config))
}

/// Eq. 7: the set of plausible range-*differences* `Δl^{2,1} = l₂ − l₁`
/// consistent with a measured inter-antenna phase difference, one per
/// integer ambiguity `k`, limited to geometrically possible values
/// (`|Δl| ≤` antenna separation).
pub fn hyperbola_range_differences(
    dtheta21: f64,
    antenna_separation_m: f64,
    wavelength_m: f64,
) -> Vec<f64> {
    let base = wrap_pi(dtheta21) * wavelength_m / (4.0 * std::f64::consts::PI);
    let half_cycle = wavelength_m / 2.0; // 2π of Δθ ↔ λ/2 of Δl
    let k_max = (antenna_separation_m / half_cycle).ceil() as i64 + 1;
    let mut out = Vec::new();
    for k in -k_max..=k_max {
        let dl = base + k as f64 * half_cycle;
        if dl.abs() <= antenna_separation_m {
            out.push(dl);
        }
    }
    out
}

/// The range difference `l₂ − l₁` of a board point (on the z = 0 plane)
/// to the two antennas — the quantity the hyperbola constraint pins
/// down. Full 3-D ranges: the antennas stand off the board.
pub fn range_difference_at(p: Vec2, antennas: [Vec3; 2]) -> f64 {
    let p3 = p.with_z(0.0);
    p3.distance(antennas[1]) - p3.distance(antennas[0])
}

/// Theoretical inter-antenna phase difference (mod 2π, wrapped to
/// `(−π, π]`) at a board point — used by the HMM emission (Eq. 11's
/// `Δθ^{1,2}_{x₁,y₁}` term).
pub fn expected_dtheta21(p: Vec2, antennas: [Vec3; 2], wavelength_m: f64) -> f64 {
    wrap_pi(4.0 * std::f64::consts::PI * range_difference_at(p, antennas) / wavelength_m)
}

/// Row-batched [`expected_dtheta21`]: evaluate a whole grid row of
/// board points `(xs[i], y)` at once, streaming per-antenna distances
/// through the SoA kernels in `rf_physics::batch` and combining them in
/// place. Holds the per-row distance scratch so a build loop allocates
/// once per worker, not once per row.
///
/// **Bitwise contract:** each output is bit-identical to
/// `expected_dtheta21(Vec2::new(xs[i], y), antennas, wavelength_m)`.
/// The row kernel hoists the per-antenna `Δy²`/`Δz²` terms, and the
/// remaining per-cell expression associates exactly like
/// `Vec3::distance` + the scalar combine — `tests/channel_batch.rs`
/// and the emission-table build both pin this.
#[derive(Debug, Clone, Default)]
pub struct DthetaRowKernel {
    d0: Vec<f64>,
    d1: Vec<f64>,
}

impl DthetaRowKernel {
    /// An empty kernel (scratch grows to the first row's width).
    pub fn new() -> DthetaRowKernel {
        DthetaRowKernel::default()
    }

    /// Evaluate one row: `out[i] = expected_dtheta21((xs[i], y), …)`,
    /// bit for bit.
    ///
    /// # Panics
    /// Panics if `xs` and `out` lengths differ.
    pub fn row(
        &mut self,
        xs: &[f64],
        y: f64,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        out: &mut [f64],
    ) {
        assert_eq!(xs.len(), out.len(), "xs/out length mismatch");
        self.d0.resize(xs.len(), 0.0);
        self.d1.resize(xs.len(), 0.0);
        rf_physics::batch::distances_row(antennas[0], xs, y, 0.0, &mut self.d0);
        rf_physics::batch::distances_row(antennas[1], xs, y, 0.0, &mut self.d1);
        for (i, o) in out.iter_mut().enumerate() {
            // Same expression shape as `expected_dtheta21` (constant ·
            // difference ÷ λ) — bit-identical per cell.
            *o = wrap_pi(4.0 * std::f64::consts::PI * (self.d1[i] - self.d0[i]) / wavelength_m);
        }
    }
}

/// [`DthetaRowKernel`] in `f32` — the `F32Tolerance`-tier grid kernel
/// behind the direct single-precision emission build. Distances run
/// 4-wide instead of 2-wide; the combine folds `4π/λ` into one factor
/// and wraps in `f32`. Accuracy is a *tolerance* contract (wrap-aware
/// per-cell error ≲ 1e-5 rad on board-scale rigs, gated at 1e-4 by
/// `tests/channel_batch.rs`), not a bitwise one.
#[derive(Debug, Clone, Default)]
pub struct DthetaRowKernelF32 {
    xs32: Vec<f32>,
    d0: Vec<f32>,
    d1: Vec<f32>,
}

impl DthetaRowKernelF32 {
    /// An empty kernel (scratch grows to the first row's width).
    pub fn new() -> DthetaRowKernelF32 {
        DthetaRowKernelF32::default()
    }

    /// Evaluate one row of `expected_dtheta21` in `f32`.
    ///
    /// # Panics
    /// Panics if `xs` and `out` lengths differ.
    pub fn row(
        &mut self,
        xs: &[f64],
        y: f64,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        out: &mut [f32],
    ) {
        assert_eq!(xs.len(), out.len(), "xs/out length mismatch");
        self.xs32.clear();
        self.xs32.extend(xs.iter().map(|&x| x as f32));
        self.d0.resize(xs.len(), 0.0);
        self.d1.resize(xs.len(), 0.0);
        let y32 = y as f32;
        rf_physics::batch::distances_row_f32(antennas[0], &self.xs32, y32, 0.0, &mut self.d0);
        rf_physics::batch::distances_row_f32(antennas[1], &self.xs32, y32, 0.0, &mut self.d1);
        let k = (4.0 * std::f64::consts::PI / wavelength_m) as f32;
        for ((o, &a), &b) in out.iter_mut().zip(&self.d1).zip(&self.d0) {
            *o = wrap_pi_f32(k * (a - b));
        }
    }
}

/// `wrap_pi` in `f32`, branchless: wrap into `[−π, π]`.
///
/// `a − τ·round(a/τ)` with round-to-nearest implemented by the magic
/// constant `1.5·2²³` (exact for `|x| < 2²²`, the entire geometric
/// domain here — `|a| ≤ 4π·spacing/λ`, tens of radians). No `fmodf`
/// call, no branch, so the combine loop above stays 4-wide. Unlike
/// `rf_core::wrap_pi` the boundary maps to −π rather than +π — the same
/// angle, and this tier's contract is wrap-aware tolerance, not bits.
#[inline]
fn wrap_pi_f32(a: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³
    debug_assert!(a.abs() < 4_194_304.0, "wrap_pi_f32 domain: |a| < 2²²");
    let n = (a * (1.0 / std::f32::consts::TAU) + MAGIC) - MAGIC;
    a - std::f32::consts::TAU * n
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: DistanceConfig =
        DistanceConfig { wavelength_m: 0.3276, vmax_mps: 0.2, noise_margin_rad: 0.10 };

    #[test]
    fn eq5_range_delta_scaling() {
        // A full 2π of phase = λ/2 of motion.
        let full = range_delta(std::f64::consts::PI, CFG.wavelength_m);
        assert!((full - CFG.wavelength_m / 4.0).abs() < 1e-12);
        assert_eq!(range_delta(0.0, CFG.wavelength_m), 0.0);
        assert!(range_delta(-0.5, CFG.wavelength_m) < 0.0);
    }

    #[test]
    fn feasible_region_bounds() {
        let r = feasible_region([Some(0.2), Some(-0.3)], 0.05, &CFG);
        let expect_min = range_delta(0.3 - CFG.noise_margin_rad, CFG.wavelength_m).abs();
        assert!((r.min_dist - expect_min).abs() < 1e-12, "lower bound is the max |Δl|");
        assert!((r.max_dist - 0.01).abs() < 1e-12, "v_max·Δt = 0.2·0.05");
        assert!(r.is_consistent());
        assert!(r.contains(0.008));
        assert!(!r.contains(0.02));
        assert!(!r.contains(0.0));
    }

    #[test]
    fn missing_phases_relax_the_lower_bound() {
        let r = feasible_region([None, None], 0.05, &CFG);
        assert_eq!(r.min_dist, 0.0);
        assert!(r.contains(0.0));
    }

    #[test]
    fn inconsistent_region_detected() {
        // Phase claims ~λ/4 ≈ 8 cm of motion in 50 ms → impossible at
        // v_max = 0.2 m/s.
        let r = feasible_region([Some(3.0), None], 0.05, &CFG);
        assert!(!r.is_consistent());
    }

    #[test]
    fn hyperbola_candidates_cover_the_true_difference() {
        let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
        let p = Vec2::new(0.07, 0.62);
        let true_dl = range_difference_at(p, rig);
        let dtheta = 4.0 * std::f64::consts::PI * true_dl / CFG.wavelength_m;
        let candidates = hyperbola_range_differences(dtheta, 0.56, CFG.wavelength_m);
        let best = candidates
            .iter()
            .map(|c| (c - true_dl).abs())
            .fold(f64::INFINITY, f64::min);
        assert!(best < 1e-9, "one candidate must hit the true Δl, best err {best}");
    }

    #[test]
    fn hyperbola_candidates_respect_geometry() {
        let candidates = hyperbola_range_differences(1.0, 0.56, CFG.wavelength_m);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(c.abs() <= 0.56, "|l₂ − l₁| can never exceed the baseline");
        }
        // Adjacent candidates are λ/2 apart.
        for w in candidates.windows(2) {
            assert!((w[1] - w[0] - CFG.wavelength_m / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_dtheta_matches_forward_model() {
        let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
        let p = Vec2::new(-0.1, 0.8);
        let dl = range_difference_at(p, rig);
        let th = expected_dtheta21(p, rig, CFG.wavelength_m);
        let reconstructed = wrap_pi(4.0 * std::f64::consts::PI * dl / CFG.wavelength_m);
        assert!((th - reconstructed).abs() < 1e-12);
    }

    #[test]
    fn dtheta_row_kernel_is_bitwise() {
        let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
        let xs: Vec<f64> = (0..97).map(|i| -0.45 + 0.01 * i as f64).collect();
        let mut kernel = DthetaRowKernel::new();
        let mut out = vec![0.0; xs.len()];
        for row in 0..5 {
            let y = 0.4 + 0.11 * row as f64;
            kernel.row(&xs, y, rig, CFG.wavelength_m, &mut out);
            for (i, &x) in xs.iter().enumerate() {
                let want = expected_dtheta21(Vec2::new(x, y), rig, CFG.wavelength_m);
                assert_eq!(want.to_bits(), out[i].to_bits(), "row {row} col {i}");
            }
        }
    }

    #[test]
    fn dtheta_row_kernel_f32_stays_in_tolerance() {
        let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
        let xs: Vec<f64> = (0..97).map(|i| -0.45 + 0.01 * i as f64).collect();
        let mut kernel = DthetaRowKernelF32::new();
        let mut out = vec![0.0f32; xs.len()];
        for row in 0..5 {
            let y = 0.4 + 0.11 * row as f64;
            kernel.row(&xs, y, rig, CFG.wavelength_m, &mut out);
            for (i, &x) in xs.iter().enumerate() {
                let want = expected_dtheta21(Vec2::new(x, y), rig, CFG.wavelength_m);
                let delta = wrap_pi(out[i] as f64 - want).abs();
                assert!(delta < 1e-4, "row {row} col {i}: |Δ| = {delta}");
            }
        }
    }

    #[test]
    fn equidistant_point_has_zero_difference() {
        let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
        let p = Vec2::new(0.0, 0.7); // on the perpendicular bisector
        assert!(range_difference_at(p, rig).abs() < 1e-12);
        assert!(expected_dtheta21(p, rig, CFG.wavelength_m).abs() < 1e-12);
    }
}
