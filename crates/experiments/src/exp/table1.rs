//! Table 1: infrastructure cost comparison.
//!
//! Pure arithmetic over the component catalog the paper quotes — kept
//! as data + code (rather than hardcoded totals) so the comparison
//! recomputes if a component price is edited.

use crate::report::Report;
use crate::runner::RunOpts;

/// One line item of a system's bill of materials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineItem {
    /// Component description.
    pub item: &'static str,
    /// Unit cost, USD.
    pub unit_cost: u32,
    /// Quantity.
    pub quantity: u32,
}

impl LineItem {
    /// Total cost of this line.
    pub fn total(&self) -> u32 {
        self.unit_cost * self.quantity
    }
}

/// A system's bill of materials.
#[derive(Debug, Clone, PartialEq)]
pub struct Bom {
    /// System name.
    pub system: &'static str,
    /// Line items.
    pub items: Vec<LineItem>,
}

impl Bom {
    /// System total cost.
    pub fn total(&self) -> u32 {
        self.items.iter().map(LineItem::total).sum()
    }
}

/// The three bills of materials of Table 1.
pub fn catalog() -> Vec<Bom> {
    vec![
        Bom {
            system: "PolarDraw",
            items: vec![
                LineItem { item: "Reader (2-port) [ThingMagic Micro]", unit_cost: 285, quantity: 1 },
                LineItem { item: "Antenna [Laird PA9-12]", unit_cost: 79, quantity: 2 },
            ],
        },
        Bom {
            system: "Tagoram",
            items: vec![
                LineItem { item: "Reader (4-port) [ThingMagic M6e]", unit_cost: 398, quantity: 1 },
                LineItem { item: "Antenna [YAP-100CP]", unit_cost: 135, quantity: 4 },
            ],
        },
        Bom {
            system: "RF-IDraw",
            items: vec![
                LineItem { item: "Reader (4-port) [ThingMagic M6e]", unit_cost: 398, quantity: 2 },
                LineItem { item: "Antenna [AN-900LH]", unit_cost: 89, quantity: 8 },
            ],
        },
    ]
}

/// Regenerate Table 1.
pub fn run(_opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "table1",
        "Infrastructure cost comparison",
        "PolarDraw $443 vs Tagoram $938 vs RF-IDraw $1508",
    )
    .headers(vec!["System", "Item", "Unit cost ($)", "Qty", "Total ($)"]);
    for bom in catalog() {
        for li in &bom.items {
            report.push_row(vec![
                bom.system.to_string(),
                li.item.to_string(),
                li.unit_cost.to_string(),
                li.quantity.to_string(),
                li.total().to_string(),
            ]);
        }
        report.push_row(vec![
            bom.system.to_string(),
            "— system total —".to_string(),
            String::new(),
            String::new(),
            bom.total().to_string(),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let totals: Vec<(/*sys*/ &str, u32)> =
            catalog().iter().map(|b| (b.system, b.total())).collect();
        assert_eq!(totals, vec![("PolarDraw", 443), ("Tagoram", 938), ("RF-IDraw", 1508)]);
    }

    #[test]
    fn polardraw_is_less_than_half_of_rfidraw() {
        let c = catalog();
        assert!(c[0].total() * 2 < c[2].total());
        // "reduces the infrastructure cost by half" vs Tagoram.
        assert!(f64::from(c[0].total()) < 0.5 * f64::from(c[1].total()) + 40.0);
    }

    #[test]
    fn report_renders_all_systems() {
        let r = &run(&RunOpts::default())[0];
        let text = r.to_string();
        for sys in ["PolarDraw", "Tagoram", "RF-IDraw"] {
            assert!(text.contains(sys));
        }
        assert!(text.contains("443") && text.contains("938") && text.contains("1508"));
    }
}
