//! Equivalence-testing harness for the vectorized beam kernels
//! (tier-1, named in scripts/verify.sh).
//!
//! The decoder now has two precision contracts (see `KernelOptions` in
//! `polardraw_core::hmm`), and this file is where each is enforced:
//!
//! * **`F64Exact` — bit-for-bit.** The SoA frontier, chunked intra-step
//!   parallel expansion, and scratch plumbing must not change a single
//!   bit of the output relative to `viterbi_reference`, at any thread
//!   count. Checked by `to_bits` comparison over derived-seed sweeps.
//! * **`F32Tolerance` — quantitative oracle, not bitwise.** Dropping to
//!   f32 tables rounds every transition/emission term, so bitwise
//!   identity is impossible by construction. Instead the path is gated
//!   by three observable bounds:
//!   1. *per-step best-frontier score deltas* — even when near-ties
//!      resolve differently, the winning score is stable: the f32 best
//!      is within rounding accumulation of the f64 best every step;
//!   2. *final-trail Procrustes distance* between the f32 and exact
//!      trails on real simulated glyph streams;
//!   3. *letter-accuracy parity* on the fig13 reduced config (the
//!      golden suite snapshots the same table; here it is asserted).
//!
//! Every sweep draws from `derive_seed_indexed(BASE_SEED, label, i)`
//! (the `tests/properties.rs` convention), so a failing case is
//! reproducible from its printed (label, index, seed).

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::distance::{expected_dtheta21, FeasibleRegion};
use polardraw_core::hmm::{
    viterbi_reference, viterbi_with_kernel, FixedLagDecoder, Grid, HmmConfig, KernelOptions,
    KernelPrecision, StepObservation,
};
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::{procrustes_distance, LetterRecognizer};
use rf_core::rng::{derive_seed_indexed, Rng64};
use rf_core::{Vec2, Vec3};

/// Root seed, shared with `tests/properties.rs`.
const BASE_SEED: u64 = 42;

fn sweep<F: FnMut(&mut Rng64, &str)>(label: &str, cases: usize, mut body: F) {
    for i in 0..cases {
        let seed = derive_seed_indexed(BASE_SEED, label, i as u64);
        let mut rng = Rng64::from_seed(seed);
        let ctx = format!("{label} case {i} (seed {seed:#018x})");
        body(&mut rng, &ctx);
    }
}

/// A randomized decode scenario (same shape as
/// `tests/decoder_equivalence.rs`): small grids, randomized rigs,
/// mixed observation kinds.
struct Scenario {
    grid: Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: Vec<StepObservation>,
    config: HmmConfig,
    beam_width: usize,
}

fn random_scenario(rng: &mut Rng64, beam_widths: &[usize]) -> Scenario {
    let cell_m = rng.gen_range(0.004..0.02);
    let min = Vec2::new(rng.gen_range(-0.3..0.1), rng.gen_range(0.3..0.6));
    let span = Vec2::new(rng.gen_range(0.05..0.35), rng.gen_range(0.05..0.35));
    let grid = Grid::covering(min, min + span, cell_m);
    let antennas = [
        Vec3::new(rng.gen_range(-0.5..-0.1), rng.gen_range(0.0..0.3), rng.gen_range(0.4..0.8)),
        Vec3::new(rng.gen_range(0.1..0.5), rng.gen_range(0.0..0.3), rng.gen_range(0.4..0.8)),
    ];
    let start = Vec2::new(
        rng.gen_range(min.x..min.x + span.x),
        rng.gen_range(min.y..min.y + span.y),
    );
    let config = HmmConfig { cell_m, ..HmmConfig::default() };
    let n_steps = 3 + rng.gen_index(10);
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        let min_dist = rng.gen_range(0.0..cell_m * 3.0);
        let max_dist = min_dist + rng.gen_range(cell_m * 0.5..cell_m * 4.0);
        let direction = if rng.gen_bool(0.7) {
            Some(Vec2::from_angle(rng.gen_range(0.0..std::f64::consts::TAU)))
        } else {
            None
        };
        let dtheta21 = if rng.gen_bool(0.6) {
            let p = Vec2::new(
                rng.gen_range(min.x..min.x + span.x),
                rng.gen_range(min.y..min.y + span.y),
            );
            Some(rf_core::wrap_pi(
                expected_dtheta21(p, antennas, config.wavelength_m) + rng.gaussian(0.4),
            ))
        } else {
            None
        };
        let target_dist = rng.gen_range(0.0..max_dist * 1.2);
        steps.push(StepObservation {
            region: FeasibleRegion { min_dist, max_dist },
            direction,
            dtheta21,
            target_dist,
        });
    }
    let beam_width = beam_widths[rng.gen_index(beam_widths.len())];
    Scenario { grid, antennas, start, steps, config, beam_width }
}

fn assert_tracks_identical(fast: &[Vec2], slow: &[Vec2], ctx: &str) {
    assert_eq!(fast.len(), slow.len(), "{ctx}: track lengths differ");
    for (k, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
            "{ctx}: point {k} differs: kernel {a:?} vs reference {b:?}"
        );
    }
}

// ---------------------------------------------------------------------
// 1. The f64 path: bit-identical to the reference at any thread count.
// ---------------------------------------------------------------------

#[test]
fn exact_kernel_is_bit_identical_to_reference_across_threads() {
    sweep("kernel_exact_threads", 96, |rng, ctx| {
        let sc = random_scenario(rng, &[1, 8, 64, 256, 2500]);
        let want = viterbi_reference(
            &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width,
        );
        for threads in [1usize, 2, 8] {
            let kernel = KernelOptions::exact().with_threads(threads);
            let (got, _) = viterbi_with_kernel(
                &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width, kernel,
            );
            assert_tracks_identical(&got, &want, &format!("{ctx} threads {threads}"));
        }
    });
}

// ---------------------------------------------------------------------
// 2. The f32 path: per-step best-frontier score deltas stay within the
//    rounding-accumulation tolerance.
// ---------------------------------------------------------------------

fn best_score(frontier: &[(u32, f64)]) -> f64 {
    frontier.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max)
}

/// Even when a near-tie makes the two precisions pick different argmax
/// cells, the *winning score* is stable: the f32 best is bounded by the
/// f64 best plus per-term rounding, accumulated once per step. The
/// bound here (10⁻⁴ absolute per step + 10⁻⁵ relative) is ~100× the
/// worst delta observed across this sweep, but ~1000× smaller than the
/// score scale — a real kernel bug (wrong term, wrong wrap, wrong
/// merge) blows through it immediately.
#[test]
fn f32_per_step_best_scores_stay_within_tolerance() {
    let f32_kernel = KernelOptions {
        precision: KernelPrecision::F32Tolerance,
        adaptive: None,
        threads: 1,
    };
    sweep("kernel_f32_scores", 64, |rng, ctx| {
        let sc = random_scenario(rng, &[16, 64, 256, 2500]);
        let mut exact = FixedLagDecoder::new(
            sc.grid, sc.antennas, sc.start, sc.config, sc.beam_width, usize::MAX,
        );
        let mut fast = FixedLagDecoder::new(
            sc.grid, sc.antennas, sc.start, sc.config, sc.beam_width, usize::MAX,
        );
        fast.set_kernel(f32_kernel);
        for (k, obs) in sc.steps.iter().enumerate() {
            exact.step(obs);
            fast.step(obs);
            let b64 = best_score(&exact.frontier());
            let b32 = best_score(&fast.frontier());
            let tol = 1e-4 * (k + 1) as f64 + 1e-5 * b64.abs();
            let delta = (b64 - b32).abs();
            assert!(
                delta <= tol,
                "{ctx}: step {k} best-score delta {delta:e} > tol {tol:e} \
                 (f64 {b64}, f32 {b32})"
            );
        }
    });
}

/// The chunked f32 expansion must be deterministic too: threads 1/2/8
/// produce bit-identical tracks (the f32 path gives up exactness vs
/// f64, *not* run-to-run determinism).
#[test]
fn f32_kernel_is_deterministic_across_threads() {
    sweep("kernel_f32_threads", 64, |rng, ctx| {
        let sc = random_scenario(rng, &[8, 64, 2500]);
        let base = KernelOptions {
            precision: KernelPrecision::F32Tolerance,
            adaptive: None,
            threads: 1,
        };
        let (want, want_stats) = viterbi_with_kernel(
            &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width, base,
        );
        for threads in [2usize, 8] {
            let (got, got_stats) = viterbi_with_kernel(
                &sc.grid,
                sc.antennas,
                sc.start,
                &sc.steps,
                &sc.config,
                sc.beam_width,
                base.with_threads(threads),
            );
            assert_tracks_identical(&got, &want, &format!("{ctx} threads {threads}"));
            assert_eq!(got_stats, want_stats, "{ctx} threads {threads}: stats differ");
        }
    });
}

// ---------------------------------------------------------------------
// 3. Real glyph streams: the fast kernel's trail stays Procrustes-close
//    to the exact kernel's trail.
// ---------------------------------------------------------------------

fn track_with_kernel(setup: &TrialSetup, seed: u64, kernel: KernelOptions) -> Vec<Vec2> {
    let (_, reports) = simulate_reports(setup, seed);
    let cfg = polardraw_config_for(setup);
    let mut online = OnlineTracker::new(cfg, OnlineOptions::batch().with_kernel(kernel));
    online.extend(&reports);
    online.finalize().trail.points
}

/// Full pipeline, reduced fidelity (cell_scale 4 ⇒ 1 cm cells): the
/// f32+adaptive trail must stay within 1 cm Procrustes distance of the
/// exact trail — i.e. the precision knob moves the answer by less than
/// one grid cell, far below the paper's ~3 cm tracking-error regime.
#[test]
fn fast_kernel_glyph_trails_stay_procrustes_close_to_exact() {
    for (i, ch) in ['L', 'O', 'V'].into_iter().enumerate() {
        for t in 0..3u64 {
            let seed = derive_seed_indexed(BASE_SEED, "kernel_glyph", i as u64 * 100 + t);
            let setup = TrialSetup::letter(ch).with_cell_scale(4.0);
            let exact = track_with_kernel(&setup, seed, KernelOptions::exact());
            let fast = track_with_kernel(&setup, seed, KernelOptions::fast());
            assert_eq!(exact.len(), fast.len(), "letter {ch} trial {t}: trail lengths");
            let d = procrustes_distance(&exact, &fast, 64)
                .expect("trails are non-degenerate");
            assert!(
                d < 0.01,
                "letter {ch} trial {t} (seed {seed:#018x}): \
                 fast-vs-exact Procrustes {d:.4} m ≥ 1 cm"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4. Letter-accuracy parity on the fig13 reduced config.
// ---------------------------------------------------------------------

/// The same reduced fidelity the golden fig13 snapshot runs
/// (cell_scale 8): over a letters × seeds panel, the fast kernel must
/// classify at least as many trials correctly as the exact kernel,
/// minus a one-trial slack (a single borderline glyph may flip either
/// way; a systematic accuracy loss may not hide in it).
#[test]
fn fast_kernel_letter_accuracy_parity_on_reduced_fig13() {
    const LETTERS: [char; 8] = ['C', 'I', 'L', 'N', 'O', 'S', 'U', 'Z'];
    let rec = LetterRecognizer::new();
    let mut exact_correct = 0usize;
    let mut fast_correct = 0usize;
    let mut total = 0usize;
    for (i, ch) in LETTERS.into_iter().enumerate() {
        for t in 0..2u64 {
            let seed = derive_seed_indexed(BASE_SEED, "fig13_parity", i as u64 * 10 + t);
            let setup = TrialSetup::letter(ch).with_cell_scale(8.0);
            let exact = track_with_kernel(&setup, seed, KernelOptions::exact());
            let fast = track_with_kernel(&setup, seed, KernelOptions::fast());
            exact_correct += usize::from(rec.classify(&exact) == Some(ch));
            fast_correct += usize::from(rec.classify(&fast) == Some(ch));
            total += 1;
        }
    }
    println!(
        "fig13 reduced-config parity: exact {exact_correct}/{total}, fast {fast_correct}/{total}"
    );
    assert!(
        fast_correct + 1 >= exact_correct,
        "fast kernel lost letter accuracy: {fast_correct}/{total} vs exact \
         {exact_correct}/{total}"
    );
}
