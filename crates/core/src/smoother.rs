//! Trajectory smoothing — the paper's stated future work.
//!
//! §3.5, footnote 5: *"We leave more sophisticated motion modeling, such
//! as the Kalman and Particle filters, for future work."* This module
//! supplies that: a constant-velocity Kalman filter with a
//! Rauch–Tung–Striebel backward pass, applied to the Viterbi output.
//! Cell-quantized trails come out staircase-shaped; the smoother
//! restores sub-cell continuity without distorting letter shapes.
//!
//! State per axis: `[position, velocity]`; the two axes are independent
//! (diagonal process/measurement covariances), so the filter runs as two
//! scalar-pair filters for clarity and speed.

use rf_core::Vec2;

/// Kalman smoother configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmootherConfig {
    /// Process noise: white acceleration spectral density, (m/s²)²·s.
    /// Writing is smooth; 0.5–2 works well.
    pub accel_density: f64,
    /// Measurement noise std-dev, metres (≈ the HMM cell size).
    pub measurement_sigma_m: f64,
}

impl Default for SmootherConfig {
    fn default() -> Self {
        SmootherConfig { accel_density: 1.0, measurement_sigma_m: 0.004 }
    }
}

#[derive(Debug, Clone, Copy)]
struct AxisState {
    // State mean [x, v] and covariance [[p00, p01], [p01, p11]].
    x: f64,
    v: f64,
    p00: f64,
    p01: f64,
    p11: f64,
}

/// Smooth a timed trail with a constant-velocity RTS smoother.
///
/// `times` and `points` must have equal length; returns the smoothed
/// points (same length). Inputs shorter than 3 points are returned
/// unchanged.
pub fn smooth(times: &[f64], points: &[Vec2], config: &SmootherConfig) -> Vec<Vec2> {
    assert_eq!(times.len(), points.len(), "times/points length mismatch");
    let n = points.len();
    if n < 3 {
        return points.to_vec();
    }
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let sx = smooth_axis(times, &xs, config);
    let sy = smooth_axis(times, &ys, config);
    sx.into_iter().zip(sy).map(|(x, y)| Vec2::new(x, y)).collect()
}

fn smooth_axis(times: &[f64], zs: &[f64], config: &SmootherConfig) -> Vec<f64> {
    let n = zs.len();
    let r = config.measurement_sigma_m.powi(2);
    let q = config.accel_density;

    // Forward pass, storing filtered and predicted states.
    let mut filtered: Vec<AxisState> = Vec::with_capacity(n);
    let mut predicted: Vec<AxisState> = Vec::with_capacity(n);
    let mut state = AxisState { x: zs[0], v: 0.0, p00: r, p01: 0.0, p11: 0.25 };
    predicted.push(state);
    // First measurement update.
    state = update(state, zs[0], r);
    filtered.push(state);

    for i in 1..n {
        let dt = (times[i] - times[i - 1]).max(1e-4);
        let pred = predict(state, dt, q);
        predicted.push(pred);
        state = update(pred, zs[i], r);
        filtered.push(state);
    }

    // RTS backward pass.
    let mut smoothed = filtered.clone();
    for i in (0..n - 1).rev() {
        let dt = (times[i + 1] - times[i]).max(1e-4);
        let f = &filtered[i];
        let pr = &predicted[i + 1];
        // Cross covariance of [x,v]_i with predicted state i+1:
        // P_i · Fᵀ where F = [[1, dt], [0, 1]].
        let c00 = f.p00 + dt * f.p01;
        let c01 = f.p01;
        let c10 = f.p01 + dt * f.p11;
        let c11 = f.p11;
        // Gain G = C · P_pred⁻¹.
        let det = pr.p00 * pr.p11 - pr.p01 * pr.p01;
        if det.abs() < 1e-18 {
            continue;
        }
        let (i00, i01, i11) = (pr.p11 / det, -pr.p01 / det, pr.p00 / det);
        let g00 = c00 * i00 + c01 * i01;
        let g01 = c00 * i01 + c01 * i11;
        let g10 = c10 * i00 + c11 * i01;
        let g11 = c10 * i01 + c11 * i11;
        let dx = smoothed[i + 1].x - pr.x;
        let dv = smoothed[i + 1].v - pr.v;
        smoothed[i].x = f.x + g00 * dx + g01 * dv;
        smoothed[i].v = f.v + g10 * dx + g11 * dv;
    }
    smoothed.into_iter().map(|s| s.x).collect()
}

fn predict(s: AxisState, dt: f64, q: f64) -> AxisState {
    // F = [[1, dt], [0, 1]]; Q for white acceleration.
    let q00 = q * dt.powi(3) / 3.0;
    let q01 = q * dt.powi(2) / 2.0;
    let q11 = q * dt;
    AxisState {
        x: s.x + dt * s.v,
        v: s.v,
        p00: s.p00 + 2.0 * dt * s.p01 + dt * dt * s.p11 + q00,
        p01: s.p01 + dt * s.p11 + q01,
        p11: s.p11 + q11,
    }
}

fn update(s: AxisState, z: f64, r: f64) -> AxisState {
    let innov = z - s.x;
    let denom = s.p00 + r;
    let k0 = s.p00 / denom;
    let k1 = s.p01 / denom;
    AxisState {
        x: s.x + k0 * innov,
        v: s.v + k1 * innov,
        p00: (1.0 - k0) * s.p00,
        p01: (1.0 - k0) * s.p01,
        p11: s.p11 - k1 * s.p01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase(n: usize, cell: f64) -> (Vec<f64>, Vec<Vec2>) {
        // True motion: straight diagonal; measurements quantized to a
        // cell grid (what the Viterbi emits).
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 0.05).collect();
        let points: Vec<Vec2> = times
            .iter()
            .map(|&t| {
                let x = 0.04 * t;
                let y = 0.03 * t;
                Vec2::new((x / cell).round() * cell, (y / cell).round() * cell)
            })
            .collect();
        (times, points)
    }

    #[test]
    fn smoothing_reduces_quantization_error() {
        let (times, quantized) = staircase(80, 0.005);
        let smoothed = smooth(&times, &quantized, &SmootherConfig::default());
        let err = |pts: &[Vec2]| -> f64 {
            times
                .iter()
                .zip(pts)
                .map(|(&t, p)| p.distance(Vec2::new(0.04 * t, 0.03 * t)).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&smoothed) < 0.8 * err(&quantized),
            "smoothed {:.4} vs raw {:.4}",
            err(&smoothed),
            err(&quantized)
        );
    }

    #[test]
    fn short_inputs_pass_through() {
        let times = vec![0.0, 0.05];
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.01, 0.0)];
        assert_eq!(smooth(&times, &pts, &SmootherConfig::default()), pts);
        assert!(smooth(&[], &[], &SmootherConfig::default()).is_empty());
    }

    #[test]
    fn constant_input_stays_constant() {
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 0.05).collect();
        let pts = vec![Vec2::new(0.1, 0.2); 50];
        let smoothed = smooth(&times, &pts, &SmootherConfig::default());
        for p in smoothed {
            assert!(p.distance(Vec2::new(0.1, 0.2)) < 1e-6);
        }
    }

    #[test]
    fn corners_are_preserved_not_oversmoothed() {
        // An L-shape must stay an L (recognition depends on it).
        let mut times = Vec::new();
        let mut pts = Vec::new();
        for i in 0..40 {
            times.push(i as f64 * 0.05);
            if i < 20 {
                pts.push(Vec2::new(0.0, 0.005 * i as f64));
            } else {
                pts.push(Vec2::new(0.005 * (i - 20) as f64, 0.095));
            }
        }
        let smoothed = smooth(&times, &pts, &SmootherConfig::default());
        // The corner point must not be dragged more than ~1.5 cells.
        let corner = smoothed[20];
        assert!(corner.distance(pts[20]) < 0.008, "corner moved to {corner:?}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        smooth(&[0.0], &[], &SmootherConfig::default());
    }
}
