//! Continuous azimuthal-angle tracking (§3.3.1, Eqs. 2–4) with
//! sector-boundary correction.
//!
//! When rotation dominates a timestep, PolarDraw:
//!
//! 1. classifies the sector and rotation sense from the two antennas'
//!    RSS trends (Table 3, [`crate::model::classify_rss_trend`]);
//! 2. on the *first* rotational step, seeds the azimuth from the sector
//!    entry boundary (Eq. 2);
//! 3. advances the azimuth by a fixed Δβ per window while both antennas
//!    see a strong trend (Eqs. 3–4);
//! 4. whenever the classified sector changes, snaps the azimuth to the
//!    shared boundary and remembers the accumulated discrepancy — the
//!    initial-azimuth error α̃a used by the Fig. 10 correction and the
//!    Eq. 10 final rotation.

use crate::model::{classify_rss_trend, initial_azimuth, Rotation, Sector};

/// Tuning for the azimuth tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationConfig {
    /// Antenna mounting angle γ, radians (paper: 15° in the end-to-end
    /// experiments).
    pub gamma_rad: f64,
    /// Per-window azimuth step Δβ, radians (paper: 6°).
    pub delta_beta_rad: f64,
    /// RSS-trend threshold δ for applying Δβ, dB (paper: 1.5 dBm).
    pub step_threshold_db: f64,
    /// Minimum |ΔRSS| on *both* antennas for the Table 3 signs to be
    /// trusted at all, dB. Below this, the weaker antenna's trend sign
    /// is measurement noise and classifying would flip the rotation
    /// sense at random.
    pub sign_confidence_db: f64,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            gamma_rad: 15f64.to_radians(),
            delta_beta_rad: 6f64.to_radians(),
            step_threshold_db: 1.5,
            sign_confidence_db: 0.8,
        }
    }
}

/// One rotational update produced by the tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationStep {
    /// Tracked azimuth αa after this step, radians.
    pub azimuth: f64,
    /// Rotation sense this step.
    pub rotation: Rotation,
    /// Sector this step.
    pub sector: Sector,
    /// Correction applied at a boundary crossing this step, radians
    /// (`azimuth_estimated − boundary`); 0 when no crossing.
    pub boundary_correction: f64,
}

/// Stateful azimuth tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct AzimuthTracker {
    config: RotationConfig,
    state: Option<TrackState>,
    /// Sum of boundary corrections observed so far — an estimate of the
    /// initial azimuth error α̃a.
    accumulated_error: f64,
    corrections: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TrackState {
    azimuth: f64,
    sector: Sector,
}

/// The complete logical state of an [`AzimuthTracker`], exposed so the
/// online engine can checkpoint and restore a tracker mid-stream
/// bit-for-bit (the tracker's fields stay private; this is the only
/// door in or out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzimuthSnapshot {
    /// Tracked azimuth, radians, if the tracker is initialized.
    pub azimuth: Option<f64>,
    /// Current sector, if the tracker is initialized.
    pub sector: Option<Sector>,
    /// Sum of boundary corrections observed so far.
    pub accumulated_error: f64,
    /// Number of boundary corrections observed so far.
    pub corrections: usize,
}

impl AzimuthTracker {
    /// New tracker with the given configuration.
    pub fn new(config: RotationConfig) -> AzimuthTracker {
        AzimuthTracker { config, state: None, accumulated_error: 0.0, corrections: 0 }
    }

    /// Capture the tracker's logical state for checkpointing.
    pub fn snapshot(&self) -> AzimuthSnapshot {
        AzimuthSnapshot {
            azimuth: self.state.map(|s| s.azimuth),
            sector: self.state.map(|s| s.sector),
            accumulated_error: self.accumulated_error,
            corrections: self.corrections,
        }
    }

    /// Rebuild a tracker from a [`snapshot`](Self::snapshot); the result
    /// continues exactly where the snapshotted tracker left off.
    pub fn restore(config: RotationConfig, snap: &AzimuthSnapshot) -> AzimuthTracker {
        let state = match (snap.azimuth, snap.sector) {
            (Some(azimuth), Some(sector)) => Some(TrackState { azimuth, sector }),
            _ => None,
        };
        AzimuthTracker {
            config,
            state,
            accumulated_error: snap.accumulated_error,
            corrections: snap.corrections,
        }
    }

    /// Whether the tracker has been seeded by a first rotational step.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Current azimuth estimate, if initialized.
    pub fn azimuth(&self) -> Option<f64> {
        self.state.map(|s| s.azimuth)
    }

    /// Estimated initial azimuth error α̃a: the mean of the boundary
    /// corrections seen so far (0 until the first crossing).
    pub fn initial_error_estimate(&self) -> f64 {
        if self.corrections == 0 {
            0.0
        } else {
            self.accumulated_error / self.corrections as f64
        }
    }

    /// Feed one rotational window's RSS deltas. Returns the azimuth
    /// update, or `None` when Table 3 cannot classify the trends (or
    /// either trend is too weak for its sign to be trustworthy).
    pub fn step(&mut self, ds1: f64, ds2: f64) -> Option<RotationStep> {
        if ds1.abs() < self.config.sign_confidence_db || ds2.abs() < self.config.sign_confidence_db
        {
            return None;
        }
        let (sector, rotation) = classify_rss_trend(ds1, ds2)?;
        let g = self.config.gamma_rad;

        let mut correction = 0.0;
        let azimuth = match self.state {
            None => initial_azimuth(sector, rotation, g),
            Some(prev) => {
                // Eq. 4: advance only when both antennas show a strong
                // trend.
                let strong = ds1.abs() > self.config.step_threshold_db
                    && ds2.abs() > self.config.step_threshold_db;
                let delta = if strong { self.config.delta_beta_rad } else { 0.0 };
                // Eq. 3.
                let stepped = match rotation {
                    Rotation::Clockwise => prev.azimuth - delta,
                    Rotation::CounterClockwise => prev.azimuth + delta,
                };
                if sector != prev.sector {
                    // Crossing: the true azimuth is (approximately) the
                    // shared boundary. Snap, and book the discrepancy as
                    // initial-error evidence (§3.3.1 "Initial azimuthal
                    // angle correction").
                    if let Some(boundary) = Sector::boundary_between(prev.sector, sector, g) {
                        correction = stepped - boundary;
                        self.accumulated_error += correction;
                        self.corrections += 1;
                        boundary
                    } else {
                        // Non-adjacent jump (classification glitch):
                        // re-seed from Eq. 2 rather than trusting it.
                        initial_azimuth(sector, rotation, g)
                    }
                } else {
                    // Clamp inside the physical writing range.
                    stepped.clamp(g * 0.5, std::f64::consts::PI - g * 0.5)
                }
            }
        };

        self.state = Some(TrackState { azimuth, sector });
        Some(RotationStep { azimuth, rotation, sector, boundary_correction: correction })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::deg_to_rad;
    use std::f64::consts::FRAC_PI_2;

    fn tracker() -> AzimuthTracker {
        AzimuthTracker::new(RotationConfig::default())
    }

    /// dB-domain RSS model for synthetic trends (matches the physics:
    /// round-trip RSS ∝ 40·log10|cos β|).
    fn rss_db(alpha: f64, pol: f64) -> f64 {
        40.0 * (alpha - pol).cos().abs().max(1e-9).log10()
    }

    fn deltas(from: f64, to: f64, gamma: f64) -> (f64, f64) {
        let pol1 = FRAC_PI_2 + gamma;
        let pol2 = FRAC_PI_2 - gamma;
        (rss_db(to, pol1) - rss_db(from, pol1), rss_db(to, pol2) - rss_db(from, pol2))
    }

    #[test]
    fn first_step_seeds_from_eq2() {
        let mut t = tracker();
        assert!(!t.is_initialized());
        // Clockwise in sector 2 (α ≈ 90° moving down): Eq. 2 seeds at
        // π/2 + γ.
        let (ds1, ds2) = deltas(deg_to_rad(95.0), deg_to_rad(80.0), deg_to_rad(15.0));
        let step = t.step(ds1, ds2).unwrap();
        assert_eq!(step.sector, Sector::Two);
        assert_eq!(step.rotation, Rotation::Clockwise);
        assert!((step.azimuth - (FRAC_PI_2 + deg_to_rad(15.0))).abs() < 1e-12);
        assert!(t.is_initialized());
    }

    #[test]
    fn strong_trends_advance_by_delta_beta() {
        // Strong trends on *both* antennas only occur when both mismatch
        // angles are large — deep in sector 1 (or 3), where both β's
        // exceed ~35°. That is exactly where the paper's Δβ advance
        // fires.
        let mut t = tracker();
        let gamma = deg_to_rad(15.0);
        // Seed: clockwise deep in sector 1 (150° → 142°).
        let (ds1, ds2) = deltas(deg_to_rad(150.0), deg_to_rad(142.0), gamma);
        assert!(ds1.abs() > 1.5 && ds2.abs() > 1.5, "seed ds1 {ds1} ds2 {ds2}");
        let a0 = t.step(ds1, ds2).unwrap().azimuth;
        // Another strong clockwise window, still in sector 1.
        let (ds1, ds2) = deltas(deg_to_rad(142.0), deg_to_rad(134.0), gamma);
        assert!(ds1.abs() > 1.5 && ds2.abs() > 1.5, "ds1 {ds1} ds2 {ds2}");
        let a1 = t.step(ds1, ds2).unwrap().azimuth;
        assert!((a0 - a1 - deg_to_rad(6.0)).abs() < 1e-9, "Δβ step of 6°");
    }

    #[test]
    fn weak_trends_hold_the_azimuth() {
        let mut t = tracker();
        let gamma = deg_to_rad(15.0);
        let (ds1, ds2) = deltas(deg_to_rad(100.0), deg_to_rad(85.0), gamma);
        let a0 = t.step(ds1, ds2).unwrap().azimuth;
        // A moderate clockwise turn in sector 1: confident signs, but
        // antenna 1's trend is below the Δβ gate (0.8 ≤ |Δs1| < 1.5).
        let (ds1, ds2) = deltas(deg_to_rad(140.0), deg_to_rad(135.0), gamma);
        assert!(ds1.abs() >= 0.8 && ds1.abs() < 1.5, "ds1 {ds1}");
        let a1 = t.step(ds1, ds2).unwrap().azimuth;
        assert_eq!(a0, a1, "Eq. 4: Δβ = 0 under weak trends");
    }

    #[test]
    fn unconfident_signs_are_not_classified() {
        let mut t = tracker();
        // Both trends below the sign-confidence floor: noise, not data.
        assert!(t.step(0.5, -0.6).is_none());
        assert!(!t.is_initialized());
    }

    #[test]
    fn boundary_crossing_snaps_and_records_error() {
        let gamma = deg_to_rad(15.0);
        let mut t = tracker();
        // Seed clockwise in sector 1 (both up, antenna 2 faster).
        let (ds1, ds2) = deltas(deg_to_rad(132.0), deg_to_rad(124.0), gamma);
        let s0 = t.step(ds1, ds2).unwrap();
        assert_eq!(s0.sector, Sector::One);
        // Keep rotating clockwise until the trends flip to sector 2
        // signature (s1 down, s2 up).
        let (ds1, ds2) = deltas(deg_to_rad(100.0), deg_to_rad(85.0), gamma);
        let s1 = t.step(ds1, ds2).unwrap();
        assert_eq!(s1.sector, Sector::Two);
        assert!((s1.azimuth - (FRAC_PI_2 + gamma)).abs() < 1e-12, "snapped to boundary");
        assert_ne!(s1.boundary_correction, 0.0);
        assert!(t.initial_error_estimate() != 0.0);
    }

    #[test]
    fn unclassifiable_trends_return_none_and_keep_state() {
        let mut t = tracker();
        let gamma = deg_to_rad(15.0);
        let (ds1, ds2) = deltas(deg_to_rad(100.0), deg_to_rad(85.0), gamma);
        let a0 = t.step(ds1, ds2).unwrap().azimuth;
        assert!(t.step(0.9, 0.9).is_none(), "balanced same-sign trends");
        assert_eq!(t.azimuth(), Some(a0));
    }

    #[test]
    fn azimuth_stays_in_writing_range_under_long_rotation() {
        let mut t = tracker();
        let gamma = deg_to_rad(15.0);
        // Hammer it with strong clockwise sector-3 trends.
        let (ds1, ds2) = deltas(deg_to_rad(50.0), deg_to_rad(44.0), gamma);
        for _ in 0..50 {
            t.step(ds1, ds2);
        }
        let a = t.azimuth().unwrap();
        assert!(a > 0.0 && a < std::f64::consts::PI);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_track() {
        let gamma = deg_to_rad(15.0);
        let mut t = tracker();
        let (ds1, ds2) = deltas(deg_to_rad(132.0), deg_to_rad(124.0), gamma);
        t.step(ds1, ds2).unwrap();
        let snap = t.snapshot();
        let mut r = AzimuthTracker::restore(RotationConfig::default(), &snap);
        assert_eq!(r, t);
        // Both trackers must evolve identically from here.
        let (ds1, ds2) = deltas(deg_to_rad(100.0), deg_to_rad(85.0), gamma);
        assert_eq!(t.step(ds1, ds2), r.step(ds1, ds2));
        assert_eq!(t.initial_error_estimate(), r.initial_error_estimate());
        // An uninitialized tracker snapshots to an empty state.
        let empty = tracker().snapshot();
        assert_eq!(empty.azimuth, None);
        assert!(!AzimuthTracker::restore(RotationConfig::default(), &empty).is_initialized());
    }

    #[test]
    fn error_estimate_averages_corrections() {
        let mut t = tracker();
        assert_eq!(t.initial_error_estimate(), 0.0);
        t.accumulated_error = 0.3;
        t.corrections = 2;
        assert!((t.initial_error_estimate() - 0.15).abs() < 1e-12);
    }
}
