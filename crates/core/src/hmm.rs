//! HMM trajectory decoding (§3.5, Eqs. 8–11).
//!
//! The whiteboard is discretized into equal cells; the hidden state is
//! the cell containing the pen. Transitions (Eq. 8) are uniform over the
//! feasible annulus — displacement between `max_j |Δl_j|` and
//! `v_max·Δt`. Emissions (Eq. 11) weight a candidate cell by (a) how
//! well its theoretical inter-antenna phase difference matches the
//! measurement (the hyperbola constraint, Fig. 12(c)) and (b) how close
//! it lies to the ray from the previous cell along the estimated moving
//! direction (Fig. 12(b)). Viterbi then extracts the most likely cell
//! sequence; complexity is linear in steps × cells × annulus size, which
//! is what lets the paper claim real-time decoding on a mini PC.
//!
//! Implementation note: the paper multiplies two `1 − x/…` factors; we
//! score in log-space with configurable sharpness weights, which
//! preserves the ranking the paper's product induces while letting the
//! ablation benches explore the weighting (see DESIGN.md).
//!
//! ## Decoder performance
//!
//! The beam decoder is the dominant cost of the whole reproduction
//! (every accuracy experiment runs thousands of decodes), so its inner
//! loop is built around precomputation and flat memory:
//!
//! * [`EmissionTable`] caches `expected_dtheta21` per cell — it depends
//!   only on the cell centre, the antennas, and the wavelength, so one
//!   table (two 3-D norms per cell, built once) serves every
//!   (frontier × candidate) pair of every step of every decode on the
//!   same rig. [`DecodeArtifacts`] lifts the table (and the stencil
//!   store) to a process-wide `Arc` cache keyed by the rig fingerprint,
//!   so N concurrent sessions on one rig pay one row-parallel build and
//!   one table's memory (see DESIGN.md "Multi-session serving").
//! * [`AnnulusStencil`] replaces the per-frontier-cell
//!   [`Grid::neighbourhood`] `Vec` allocation with a radius-keyed table
//!   of `(dx, dy, ideal distance)` offsets; boundary clipping is pure
//!   index arithmetic.
//! * Backpointers live in flat `Vec<u32>` frames instead of a per-step
//!   `HashMap`, beam truncation uses `select_nth_unstable_by` instead of
//!   a full sort, and every buffer lives in a reusable
//!   [`DecoderScratch`] (one per thread by default) so steady-state
//!   decodes allocate nothing but the returned track.
//!
//! The optimized decoder is kept *exactly* output-equivalent to the
//! retained naive implementation, [`viterbi_reference`]: both perform
//! identical floating-point operations per candidate in identical order
//! and share one canonical beam total order (score descending, cell
//! index ascending), so `tests/decoder_equivalence.rs` can assert
//! bit-for-bit identical tracks. `cargo bench -p polardraw-bench
//! --bench decode` (or `scripts/bench.sh`) measures the speedup;
//! DESIGN.md's "Decoder performance" section keeps the numbers.

use crate::distance::{expected_dtheta21, FeasibleRegion};
use rf_core::{wrap_pi, Vec2, Vec3};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

/// A uniform cell grid over the board region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Minimum corner of the board region, metres.
    pub min: Vec2,
    /// Cell edge, metres.
    pub cell_m: f64,
    /// Cells along X.
    pub nx: usize,
    /// Cells along Y.
    pub ny: usize,
}

impl Grid {
    /// Build a grid covering `[min, max]` with the given cell size.
    pub fn covering(min: Vec2, max: Vec2, cell_m: f64) -> Grid {
        assert!(cell_m > 0.0, "cell size must be positive");
        assert!(max.x > min.x && max.y > min.y, "degenerate board region");
        let nx = ((max.x - min.x) / cell_m).ceil() as usize + 1;
        let ny = ((max.y - min.y) / cell_m).ceil() as usize + 1;
        Grid { min, cell_m, nx, ny }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true for `covering`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of cell `idx`.
    pub fn center(&self, idx: usize) -> Vec2 {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Vec2::new(
            self.min.x + (ix as f64 + 0.5) * self.cell_m,
            self.min.y + (iy as f64 + 0.5) * self.cell_m,
        )
    }

    /// Cell index containing a point (clamped to the grid).
    pub fn index_of(&self, p: Vec2) -> usize {
        let ix = (((p.x - self.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let iy = (((p.y - self.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        iy * self.nx + ix
    }

    /// Radius in whole cells a stencil must span to cover `radius`
    /// metres, clamped to the grid diagonal (no in-bounds pair of cells
    /// is farther apart, so a larger stencil could never match more).
    fn radius_cells(&self, radius: f64) -> i32 {
        let cap = f64::hypot(self.nx as f64, self.ny as f64).ceil();
        (radius / self.cell_m).ceil().clamp(0.0, cap) as i32
    }

    /// Indices of cells whose centres lie within `radius` of cell
    /// `from`'s centre.
    ///
    /// Implemented on [`AnnulusStencil`]: the scan covers exactly the
    /// `ceil(radius / cell)` square (the historical version visited one
    /// extra ring that could never pass the distance check), in the same
    /// row-major order, with the same `≤ radius + 1e-12` membership
    /// rule — so results are identical, minus the redundant ring. The
    /// decoder hot path uses cached stencils via [`DecoderScratch`]
    /// instead of this allocating convenience method.
    pub fn neighbourhood(&self, from: usize, radius: f64) -> Vec<usize> {
        let stencil = AnnulusStencil::new(self.cell_m, self.radius_cells(radius));
        let c = self.center(from);
        let ix0 = (from % self.nx) as i64;
        let iy0 = (from / self.nx) as i64;
        let mut out = Vec::new();
        for off in stencil.offsets() {
            if off.ideal_dist_m > radius + 1e-12 + STENCIL_MARGIN_M {
                continue;
            }
            let ix = ix0 + off.dx as i64;
            let iy = iy0 + off.dy as i64;
            if ix < 0 || iy < 0 || ix >= self.nx as i64 || iy >= self.ny as i64 {
                continue;
            }
            let idx = iy as usize * self.nx + ix as usize;
            if self.center(idx).distance(c) <= radius + 1e-12 {
                out.push(idx);
            }
        }
        out
    }
}

/// Per-step observation fed to the decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepObservation {
    /// Feasible displacement annulus (Eq. 8's bounds).
    pub region: FeasibleRegion,
    /// Estimated moving direction (unit), if any.
    pub direction: Option<Vec2>,
    /// Calibrated inter-antenna phase difference measurement, radians
    /// wrapped to `(−π, π]`, if both antennas reported.
    pub dtheta21: Option<f64>,
    /// Displacement estimate along the direction line, metres — the
    /// Fig. 12(b)×(c) intersection: each antenna's range change divided
    /// by the projection of its line-of-sight onto the moving direction.
    /// Falls back to the annulus lower bound when no direction is known.
    pub target_dist: f64,
}

/// Decoder tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmmConfig {
    /// Cell edge, metres (accuracy/runtime trade-off).
    pub cell_m: f64,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Log-score weight of the hyperbola term.
    pub hyperbola_weight: f64,
    /// Log-score weight of the direction-line term.
    pub direction_weight: f64,
    /// Multiplicative log-penalty for candidates *behind* the moving
    /// direction (Fig. 12(b) keeps only forward candidates).
    pub backward_penalty: f64,
    /// Log-score weight pulling the decoded displacement toward the
    /// phase-measured amount (the annulus lower bound). This is what
    /// keeps a still pen still and a moving pen moving at its measured
    /// speed despite cell quantization.
    pub distance_weight: f64,
    /// Distance weight used when *no* direction estimate exists for the
    /// step. Horizontal pen motion is nearly tangential to both
    /// antennas — per-antenna phases stay flat and the step classifies
    /// as "still" — but the inter-antenna difference Δθ^{2,1} still
    /// moves (its iso-lines run mostly vertically). A softer anchor
    /// lets the hyperbola term drag the track sideways in that regime.
    pub distance_weight_still: f64,
}

/// Beam width for the sparse Viterbi frontier (see [`viterbi`]).
pub const DEFAULT_BEAM_WIDTH: usize = 2500;

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig {
            cell_m: 0.0025,
            wavelength_m: 0.3276,
            hyperbola_weight: 10.0,
            direction_weight: 6.0,
            backward_penalty: 4.0,
            distance_weight: 5.0,
            distance_weight_still: 1.5,
        }
    }
}

/// ULP guard added on top of the exact `≤ radius + 1e-12` membership
/// epsilon when pre-filtering candidates on the *ideal* centre distance
/// `hypot(dx, dy)·cell`: actual centre differences deviate from the
/// ideal by a few ULPs of the board coordinates (≪ 1e-12 m), never by
/// this much. Offsets admitted by the prefilter still face the exact
/// per-cell check, so the stencil only ever over-approximates.
const STENCIL_MARGIN_M: f64 = 1e-9;

/// One candidate offset of an [`AnnulusStencil`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilOffset {
    /// Cell offset along X.
    pub dx: i32,
    /// Cell offset along Y.
    pub dy: i32,
    /// Ideal centre-to-centre distance `hypot(dx, dy)·cell`, metres.
    pub ideal_dist_m: f64,
}

/// A radius-keyed table of candidate cell offsets: every `(dx, dy)`
/// whose ideal centre distance can pass the `≤ r_cells·cell` membership
/// check, in the row-major `(dy, dx)` order the historical
/// [`Grid::neighbourhood`] scan used. Replaces a per-frontier-cell
/// `Vec<usize>` allocation (plus one `sqrt` per visited cell) with a
/// reusable flat table; boundary clipping happens by index arithmetic
/// at use time.
#[derive(Debug, Clone)]
pub struct AnnulusStencil {
    cell_m: f64,
    r_cells: i32,
    offsets: Vec<StencilOffset>,
}

impl AnnulusStencil {
    /// Build the stencil for `r_cells` whole cells of reach on a grid
    /// with `cell_m` cell edge.
    pub fn new(cell_m: f64, r_cells: i32) -> AnnulusStencil {
        assert!(cell_m > 0.0, "cell size must be positive");
        let r_cells = r_cells.max(0);
        let reach = r_cells as f64 * cell_m + 1e-12 + STENCIL_MARGIN_M;
        let mut offsets = Vec::new();
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let ideal = f64::hypot(dx as f64, dy as f64) * cell_m;
                if ideal <= reach {
                    offsets.push(StencilOffset { dx, dy, ideal_dist_m: ideal });
                }
            }
        }
        AnnulusStencil { cell_m, r_cells, offsets }
    }

    /// The candidate offsets, row-major by `(dy, dx)`.
    pub fn offsets(&self) -> &[StencilOffset] {
        &self.offsets
    }

    /// Cell edge this stencil was built for, metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Reach in whole cells.
    pub fn r_cells(&self) -> i32 {
        self.r_cells
    }
}

/// Per-cell cache of [`expected_dtheta21`]: the emission's hyperbola
/// term depends only on the cell centre, the antenna positions, and the
/// wavelength, so one table (two 3-D norms per cell, built once) serves
/// every (frontier × candidate) pair of every decode on the same rig.
/// Values are the *exact* bits `expected_dtheta21` returns.
#[derive(Debug, Clone)]
pub struct EmissionTable {
    grid: Grid,
    antennas: [Vec3; 2],
    wavelength_m: f64,
    values: Vec<f64>,
}

impl EmissionTable {
    /// Precompute the expected Δθ²¹ for every cell of `grid`.
    pub fn build(grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> EmissionTable {
        let values = (0..grid.len())
            .map(|idx| expected_dtheta21(grid.center(idx), antennas, wavelength_m))
            .collect();
        EmissionTable { grid: *grid, antennas, wavelength_m, values }
    }

    /// [`build`](Self::build) with the per-cell trig fanned out across
    /// grid rows on up to `threads` scoped workers
    /// ([`rf_core::parallel_map`]). Every cell's value is computed by
    /// the same call on the same inputs and rows are merged back in
    /// row-major order, so the result is **bit-for-bit identical** to
    /// the sequential build at any thread count — only the first
    /// session's cold-start wall time changes.
    pub fn build_parallel(
        grid: &Grid,
        antennas: [Vec3; 2],
        wavelength_m: f64,
        threads: usize,
    ) -> EmissionTable {
        if threads.max(1) == 1 || grid.ny < 2 {
            return EmissionTable::build(grid, antennas, wavelength_m);
        }
        let nx = grid.nx;
        let rows: Vec<Vec<f64>> =
            rf_core::parallel_map((0..grid.ny).collect(), threads, |&iy| {
                (0..nx)
                    .map(|ix| expected_dtheta21(grid.center(iy * nx + ix), antennas, wavelength_m))
                    .collect()
            });
        let mut values = Vec::with_capacity(grid.len());
        for row in rows {
            values.extend(row);
        }
        EmissionTable { grid: *grid, antennas, wavelength_m, values }
    }

    /// Whether this table was built for exactly this rig.
    pub fn matches(&self, grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> bool {
        self.grid == *grid && self.antennas == antennas && self.wavelength_m == wavelength_m
    }

    /// The cached `expected_dtheta21` of a cell.
    #[inline]
    pub fn expected(&self, cell: usize) -> f64 {
        self.values[cell]
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Shared decode artifacts for one rig — the process-wide unit of
/// sharing behind multi-session serving.
///
/// Keyed by the config fingerprint that determines every cached value:
/// the grid (board extent + cell size), the two antenna positions, and
/// the wavelength — exactly the fields [`EmissionTable::matches`]
/// checks, and a subset of the fingerprint `polardraw.online.checkpoint.v1`
/// stores, so any checkpoint that restores against a config resolves to
/// the same artifact entry the original session used. The emission
/// table itself is built lazily (first step that carries a Δθ²¹
/// measurement) via `OnceLock`, row-parallel, and then shared by every
/// decoder on the rig through `Arc` — N sessions pay one build and one
/// table's memory instead of N.
#[derive(Debug)]
pub struct DecodeArtifacts {
    grid: Grid,
    antennas: [Vec3; 2],
    wavelength_m: f64,
    emission: OnceLock<Arc<EmissionTable>>,
}

impl DecodeArtifacts {
    /// Whether this entry was built for exactly this rig (same
    /// equality rule as [`EmissionTable::matches`]).
    pub fn matches(&self, grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> bool {
        self.grid == *grid && self.antennas == antennas && self.wavelength_m == wavelength_m
    }

    /// The shared emission table, building it (row-parallel, bit-identical
    /// to the sequential build) on first use. Concurrent first callers
    /// race benignly: `OnceLock` keeps exactly one winner's table.
    pub fn emission(&self) -> &Arc<EmissionTable> {
        self.emission.get_or_init(|| {
            Arc::new(EmissionTable::build_parallel(
                &self.grid,
                self.antennas,
                self.wavelength_m,
                auto_build_threads(self.grid.len()),
            ))
        })
    }

    /// The shared emission table if some decoder already built it.
    pub fn emission_if_built(&self) -> Option<&Arc<EmissionTable>> {
        self.emission.get()
    }

    /// The grid this entry is keyed on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

/// Worker count for the row-parallel emission-table build: the host's
/// available parallelism, capped (the build is a few ms of trig — more
/// than 8 workers is all spawn overhead) and clamped to 1 for grids too
/// small to amortize a thread spawn.
fn auto_build_threads(cells: usize) -> usize {
    if cells < 32_768 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Cap on distinct rigs retained by the process-wide artifact cache.
/// Real deployments see one rig (or a handful); experiment sweeps churn
/// through reduced-fidelity grids, so eviction first drops entries no
/// session holds anymore.
const ARTIFACT_CACHE_CAP: usize = 32;

fn artifact_cache() -> &'static Mutex<Vec<Arc<DecodeArtifacts>>> {
    static CACHE: OnceLock<Mutex<Vec<Arc<DecodeArtifacts>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide [`DecodeArtifacts`] entry for a rig, creating it on
/// first sight. Every decoder (batch scratch, [`FixedLagDecoder`],
/// every serve-pool session) resolves its rig through here, so all of
/// them end up holding the *same* `Arc` — `Arc::strong_count` on the
/// returned entry counts the sessions sharing it (plus the cache's own
/// reference), which is what `tests/serve.rs` asserts for the
/// memory-sublinearity guarantee.
pub fn artifacts_for(grid: &Grid, antennas: [Vec3; 2], wavelength_m: f64) -> Arc<DecodeArtifacts> {
    let mut cache = artifact_cache().lock().expect("artifact cache poisoned");
    if let Some(entry) = cache.iter().find(|a| a.matches(grid, antennas, wavelength_m)) {
        return Arc::clone(entry);
    }
    if cache.len() >= ARTIFACT_CACHE_CAP {
        // Drop rigs nobody references anymore; live sessions keep their
        // entries alive through their own Arcs either way.
        cache.retain(|a| Arc::strong_count(a) > 1);
        if cache.len() >= ARTIFACT_CACHE_CAP {
            cache.remove(0);
        }
    }
    let entry = Arc::new(DecodeArtifacts {
        grid: *grid,
        antennas,
        wavelength_m,
        emission: OnceLock::new(),
    });
    cache.push(Arc::clone(&entry));
    entry
}

fn stencil_store() -> &'static Mutex<Vec<Arc<AnnulusStencil>>> {
    static STORE: OnceLock<Mutex<Vec<Arc<AnnulusStencil>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide shared stencil for `(cell_m, r_cells)`, building it
/// on first sight. Stencils are pure functions of their key, so every
/// scratch and every session on every thread shares one copy per radius
/// key instead of rebuilding (and separately storing) it per scratch.
pub fn shared_stencil(cell_m: f64, r_cells: i32) -> Arc<AnnulusStencil> {
    let r_cells = r_cells.max(0);
    let mut store = stencil_store().lock().expect("stencil store poisoned");
    if let Some(s) = store.iter().find(|s| s.cell_m() == cell_m && s.r_cells() == r_cells) {
        return Arc::clone(s);
    }
    if store.len() >= STENCIL_CACHE_CAP {
        store.retain(|s| Arc::strong_count(s) > 1);
        if store.len() >= STENCIL_CACHE_CAP {
            store.remove(0);
        }
    }
    let s = Arc::new(AnnulusStencil::new(cell_m, r_cells));
    store.push(Arc::clone(&s));
    s
}

/// Work counters from one decode, returned by [`viterbi_with_stats`]:
/// how much the decoder actually did, not just how long it took.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeStats {
    /// Observations decoded.
    pub steps: usize,
    /// Steps carried through unchanged because no candidate was
    /// feasible (inconsistent annulus / frontier collapse).
    pub carried_steps: usize,
    /// Candidate (frontier × annulus) pairs that entered scoring.
    pub expansions: u64,
    /// Candidates rejected by the hard annulus lower bound.
    pub pruned_below_min: u64,
    /// Scored cells dropped by beam truncation, summed over steps.
    pub pruned_beam: u64,
    /// Distinct cells scored, summed over steps.
    pub touched_cells: u64,
    /// Largest frontier entering any step.
    pub max_frontier: usize,
    /// Frontier sizes entering each step, summed.
    pub total_frontier: u64,
}

impl DecodeStats {
    /// Mean frontier size entering a step.
    pub fn mean_frontier(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_frontier as f64 / self.steps as f64
        }
    }
}

/// Cap on the process-wide shared stencil store (and on each scratch's
/// local memo of `Arc`s into it); decodes see a handful of distinct
/// radii, so this is only a guard against pathological inputs.
const STENCIL_CACHE_CAP: usize = 64;

/// Reusable decode buffers and caches. [`viterbi_beam`] keeps one per
/// thread automatically; long-running callers (benches, servers) can
/// hold their own via [`viterbi_with_scratch`] so steady-state decodes
/// allocate nothing but the returned track.
#[derive(Debug, Default)]
pub struct DecoderScratch {
    /// Dense per-cell best score this step, reset via `touched`.
    scores: Vec<f64>,
    /// Dense per-cell best predecessor this step.
    preds: Vec<u32>,
    /// Cells written this step (the reset list).
    touched: Vec<u32>,
    /// Stencil offsets trimmed to the current step's radius.
    step_offsets: Vec<StencilOffset>,
    /// Current frontier, canonically ordered.
    frontier: Vec<(u32, f64)>,
    /// Next frontier under construction.
    next: Vec<(u32, f64)>,
    /// Flat backpointer frames: cells …
    bp_cells: Vec<u32>,
    /// … their best predecessors …
    bp_prevs: Vec<u32>,
    /// … and each step's exclusive end offset into the two above.
    frame_ends: Vec<u32>,
    /// Radius-keyed local memo of [`shared_stencil`] handles — the hot
    /// loop resolves a radius without touching the global mutex.
    stencils: Vec<Arc<AnnulusStencil>>,
    /// Shared artifacts of the rig this scratch last decoded.
    artifacts: Option<Arc<DecodeArtifacts>>,
}

impl DecoderScratch {
    /// Fresh, empty scratch.
    pub fn new() -> DecoderScratch {
        DecoderScratch::default()
    }
}

/// Find the locally memoized handle for `(cell_m, r_cells)`, going to
/// the process-wide [`shared_stencil`] store on a local miss — repeated
/// radius keys across sessions and trials are deduplicated once, not
/// per scratch.
fn cached_stencil(stencils: &mut Vec<Arc<AnnulusStencil>>, cell_m: f64, r_cells: i32) -> usize {
    if let Some(i) =
        stencils.iter().position(|s| s.cell_m() == cell_m && s.r_cells() == r_cells)
    {
        return i;
    }
    if stencils.len() >= STENCIL_CACHE_CAP {
        stencils.clear();
    }
    stencils.push(shared_stencil(cell_m, r_cells));
    stencils.len() - 1
}

/// The canonical beam total order both decoders share: score
/// descending, cell index ascending. Cell indices are unique, so this
/// is a strict total order — beam truncation and frontier iteration are
/// deterministic and implementation-independent.
fn beam_order(a: &(u32, f64), b: &(u32, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

thread_local! {
    /// Per-thread default scratch backing [`viterbi_beam`] /
    /// [`viterbi_with_stats`]: repeated decodes on a thread (every trial
    /// in `experiments::runner`) reuse buffers and caches for free.
    static THREAD_SCRATCH: RefCell<DecoderScratch> = RefCell::new(DecoderScratch::new());
}

/// Viterbi decoding of the cell sequence, with a sparse beam frontier.
///
/// * `grid` — the state space.
/// * `antenna_xy` — antenna positions projected on the board.
/// * `start` — initial position estimate (the paper bootstraps from an
///   arbitrary point on a measured hyperbola; relative trajectories are
///   evaluated Procrustes-style so the translation washes out).
/// * `steps` — one observation per window transition.
///
/// Exact Viterbi over the full grid would cost `steps × cells ×
/// annulus`; since the posterior is sharply unimodal (the pen is one
/// object), we keep only the best [`DEFAULT_BEAM_WIDTH`] cells per step.
/// This is the standard beam approximation; the paper's linear-time
/// claim (§3.5) corresponds to the same pruned regime.
///
/// Returns one position per step (the position *after* each step).
pub fn viterbi(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
) -> Vec<Vec2> {
    viterbi_beam(grid, antennas, start, steps, config, DEFAULT_BEAM_WIDTH)
}

/// [`viterbi`] with an explicit beam width (ablation hook).
pub fn viterbi_beam(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> Vec<Vec2> {
    viterbi_with_stats(grid, antennas, start, steps, config, beam_width).0
}

/// [`viterbi_beam`] plus [`DecodeStats`] work counters, using the
/// per-thread scratch.
pub fn viterbi_with_stats(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> (Vec<Vec2>, DecodeStats) {
    THREAD_SCRATCH.with(|s| {
        decode_optimized(grid, antennas, start, steps, config, beam_width, &mut s.borrow_mut())
    })
}

/// [`viterbi_with_stats`] against caller-held scratch, for callers that
/// want explicit control of buffer/cache lifetime (benches, services).
pub fn viterbi_with_scratch(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
    scratch: &mut DecoderScratch,
) -> (Vec<Vec2>, DecodeStats) {
    decode_optimized(grid, antennas, start, steps, config, beam_width, scratch)
}

/// The optimized decoder core. Performs, per candidate, the *same*
/// floating-point operations in the *same* order as
/// [`viterbi_reference`] (the emission lookup returns the exact bits the
/// reference recomputes), processes frontiers in the same canonical
/// order, and applies the same membership/pruning rules — so its output
/// is bit-for-bit identical; only the bookkeeping around the arithmetic
/// differs.
#[allow(clippy::too_many_arguments)]
fn decode_optimized(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
    scratch: &mut DecoderScratch,
) -> (Vec<Vec2>, DecodeStats) {
    let mut stats = DecodeStats { steps: steps.len(), ..DecodeStats::default() };
    if steps.is_empty() {
        return (Vec::new(), stats);
    }
    let beam_width = beam_width.max(8);
    let n = grid.len();

    let DecoderScratch {
        scores,
        preds,
        touched,
        step_offsets,
        frontier,
        next,
        bp_cells,
        bp_prevs,
        frame_ends,
        stencils,
        artifacts,
    } = scratch;

    if scores.len() < n {
        scores.resize(n, f64::NEG_INFINITY);
        preds.resize(n, u32::MAX);
    }
    touched.clear();
    frontier.clear();
    next.clear();
    bp_cells.clear();
    bp_prevs.clear();
    frame_ends.clear();

    // Resolve (or reuse) the rig's shared emission table only when a
    // step carries a hyperbola measurement; the table is built once
    // process-wide and shared by Arc, not rebuilt per scratch.
    let emission: Option<&EmissionTable> = if steps.iter().any(|o| o.dtheta21.is_some()) {
        let stale = artifacts
            .as_ref()
            .map_or(true, |a| !a.matches(grid, antennas, config.wavelength_m));
        if stale {
            *artifacts = Some(artifacts_for(grid, antennas, config.wavelength_m));
        }
        artifacts.as_ref().map(|a| a.emission().as_ref())
    } else {
        None
    };

    frontier.push((grid.index_of(start) as u32, 0.0));

    for obs in steps {
        advance_frontier(
            grid,
            antennas,
            config,
            beam_width,
            obs,
            emission,
            scores,
            preds,
            touched,
            step_offsets,
            stencils,
            frontier,
            next,
            bp_cells,
            bp_prevs,
            frame_ends,
            &mut stats,
        );
    }

    // Backtrack from the best final state.
    let mut idx = frontier
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(c, _)| c)
        .unwrap_or(0);
    let mut rev = Vec::with_capacity(steps.len());
    for f in (0..frame_ends.len()).rev() {
        let lo = if f == 0 { 0 } else { frame_ends[f - 1] as usize };
        let hi = frame_ends[f] as usize;
        rev.push(grid.center(idx as usize));
        match bp_cells[lo..hi].iter().position(|&c| c == idx) {
            Some(k) => idx = bp_prevs[lo + k],
            None => break,
        }
    }
    rev.reverse();
    (rev, stats)
}

/// One Viterbi step over the sparse beam frontier: scores every
/// (frontier × stencil) candidate, truncates to the beam under the
/// canonical order, appends exactly one flat backpointer frame to
/// `bp_cells`/`bp_prevs`/`frame_ends`, and swaps the new frontier into
/// `frontier`. This is *the* hot loop; both the batch decoder
/// ([`decode_optimized`]) and the streaming [`FixedLagDecoder`] call
/// it, which is what keeps their outputs bit-for-bit identical.
///
/// Does not touch `stats.steps` — callers own the step count.
#[allow(clippy::too_many_arguments)]
fn advance_frontier(
    grid: &Grid,
    antennas: [Vec3; 2],
    config: &HmmConfig,
    beam_width: usize,
    obs: &StepObservation,
    emission: Option<&EmissionTable>,
    scores: &mut Vec<f64>,
    preds: &mut Vec<u32>,
    touched: &mut Vec<u32>,
    step_offsets: &mut Vec<StencilOffset>,
    stencils: &mut Vec<Arc<AnnulusStencil>>,
    frontier: &mut Vec<(u32, f64)>,
    next: &mut Vec<(u32, f64)>,
    bp_cells: &mut Vec<u32>,
    bp_prevs: &mut Vec<u32>,
    frame_ends: &mut Vec<u32>,
    stats: &mut DecodeStats,
) {
    let n = grid.len();
    if scores.len() < n {
        scores.resize(n, f64::NEG_INFINITY);
        preds.resize(n, u32::MAX);
    }
    let nx = grid.nx as i64;
    let ny = grid.ny as i64;

    stats.total_frontier += frontier.len() as u64;
    stats.max_frontier = stats.max_frontier.max(frontier.len());

    let max_r = obs.region.max_dist.max(grid.cell_m);
    let dmax = max_r;
    let target = obs.target_dist.min(obs.region.max_dist);
    // Outlier suppression: a candidate well below the (already
    // noise-compensated) lower bound is rejected outright — Eq. 8's
    // hard annulus with generous quantization slack.
    let hard_min = obs.region.min_dist - 2.0 * grid.cell_m;
    // The exact membership rule `neighbourhood` applies, plus the
    // ULP-safe prefilter bound on the ideal offset distance.
    let exact_reach = max_r + 1e-12;
    let prefilter_reach = exact_reach + STENCIL_MARGIN_M;

    let si = cached_stencil(stencils, grid.cell_m, grid.radius_cells(max_r));
    // Trim the stencil to this step's radius once, so the per-pair
    // loop carries no prefilter branch.
    step_offsets.clear();
    step_offsets
        .extend(stencils[si].offsets().iter().filter(|o| o.ideal_dist_m <= prefilter_reach));

    for &(from, s_from) in frontier.iter() {
        let from_us = from as usize;
        let ix0 = (from_us % grid.nx) as i64;
        let iy0 = (from_us / grid.nx) as i64;
        // Same formula `Grid::center` uses, with the (ix, iy) we
        // already hold — identical bits, no div/mod per pair.
        let c_from = Vec2::new(
            grid.min.x + (ix0 as f64 + 0.5) * grid.cell_m,
            grid.min.y + (iy0 as f64 + 0.5) * grid.cell_m,
        );
        for off in step_offsets.iter() {
            let ix = ix0 + off.dx as i64;
            let iy = iy0 + off.dy as i64;
            if ix < 0 || iy < 0 || ix >= nx || iy >= ny {
                continue;
            }
            let to = iy as usize * grid.nx + ix as usize;
            let c_to = Vec2::new(
                grid.min.x + (ix as f64 + 0.5) * grid.cell_m,
                grid.min.y + (iy as f64 + 0.5) * grid.cell_m,
            );
            let delta = c_to - c_from;
            let d = delta.norm();
            if d > exact_reach {
                continue;
            }
            stats.expansions += 1;
            if d < hard_min {
                stats.pruned_below_min += 1;
                continue;
            }
            let mut s = s_from;
            // Hyperbola term (Fig. 12(c)).
            if let Some(meas) = obs.dtheta21 {
                let expected = match emission {
                    Some(table) => table.expected(to),
                    None => expected_dtheta21(c_to, antennas, config.wavelength_m),
                };
                let err = wrap_pi(meas - expected).abs() / std::f64::consts::PI;
                s -= config.hyperbola_weight * err;
            }
            // Distance-consistency term: decoded step length should
            // match the phase-measured displacement.
            let (d_along, w_dist) = match obs.direction {
                Some(dir) => (dir.dot(delta), config.distance_weight),
                None => (d, config.distance_weight_still),
            };
            s -= w_dist * ((d_along - target).abs() / dmax).min(2.0);
            // Direction-line term (Fig. 12(b)).
            if let Some(dir) = obs.direction {
                if d > 1e-12 {
                    let perp = dir.cross(delta).abs();
                    s -= config.direction_weight * (perp / dmax).min(2.0);
                    if dir.dot(delta) < 0.0 {
                        s -= config.backward_penalty;
                    }
                }
            }
            // Scores are always finite, so NEG_INFINITY marks
            // "untouched" on its own (same outcome as the
            // reference's joint (score, pred) sentinel check).
            let best = &mut scores[to];
            if *best == f64::NEG_INFINITY {
                touched.push(to as u32);
            }
            if s > *best {
                *best = s;
                preds[to] = from;
            }
        }
    }

    if touched.is_empty() {
        // Inconsistent step: carry the frontier through unchanged.
        stats.carried_steps += 1;
        for &(c, _) in frontier.iter() {
            bp_cells.push(c);
            bp_prevs.push(c);
        }
        frame_ends.push(bp_cells.len() as u32);
        return;
    }
    stats.touched_cells += touched.len() as u64;

    next.clear();
    next.extend(touched.iter().map(|&c| (c, scores[c as usize])));
    // Keep the top `beam_width` states under the canonical order:
    // an O(n) partition instead of the reference's full sort.
    if next.len() > beam_width {
        stats.pruned_beam += (next.len() - beam_width) as u64;
        next.select_nth_unstable_by(beam_width - 1, beam_order);
        next.truncate(beam_width);
    }
    next.sort_unstable_by(beam_order);
    // Flat backpointer frame, in frontier order.
    for &(c, _) in next.iter() {
        bp_cells.push(c);
        bp_prevs.push(preds[c as usize]);
    }
    frame_ends.push(bp_cells.len() as u32);
    for &c in touched.iter() {
        scores[c as usize] = f64::NEG_INFINITY;
        preds[c as usize] = u32::MAX;
    }
    touched.clear();
    std::mem::swap(frontier, next);
}

/// One retained backpointer frame of a [`FixedLagDecoder`]: the beam
/// cells of one step (canonically ordered) and, parallel to them, each
/// cell's best-predecessor *grid cell* in the previous frame (for
/// carried frames, the identity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BeamFrame {
    /// Beam cells after this step.
    pub cells: Vec<u32>,
    /// Best predecessor cell of each beam cell.
    pub prevs: Vec<u32>,
}

/// Streaming Viterbi with a fixed decision lag and bounded memory.
///
/// Feed one [`StepObservation`] at a time with [`step`](Self::step);
/// the decoder retains at most `lag` backpointer frames. Whenever a
/// step would exceed the lag, the *oldest* frame is resolved — the
/// current best path is traced back to it and its cell centre is
/// committed — and the frame is freed (recycled into an internal
/// pool). [`finish`](Self::finish) backtracks over the still-retained
/// frames exactly like the batch decoder and appends that tail to the
/// committed prefix.
///
/// With `lag ≥ steps` nothing commits early and the output is
/// **bit-for-bit identical** to [`viterbi_beam`] / [`viterbi_reference`]:
/// each step runs the same [`advance_frontier`] hot loop (same
/// [`EmissionTable`] / [`AnnulusStencil`] machinery, same canonical
/// beam order) and the final backtrack is the same code shape over the
/// same frames. With a finite lag the decoder trades a bounded amount
/// of hindsight for O(lag × beam) memory — the online operating mode.
///
/// Unlike the batch entry points this struct *owns* its buffers (it
/// must be checkpointable and survive across calls), so it does not
/// use the thread-local [`DecoderScratch`].
#[derive(Debug)]
pub struct FixedLagDecoder {
    grid: Grid,
    antennas: [Vec3; 2],
    config: HmmConfig,
    beam_width: usize,
    lag: usize,
    // Logical (checkpointed) state.
    frontier: Vec<(u32, f64)>,
    frames: std::collections::VecDeque<BeamFrame>,
    committed: Vec<Vec2>,
    stats: DecodeStats,
    // Scratch (reconstructible) state.
    scores: Vec<f64>,
    preds: Vec<u32>,
    touched: Vec<u32>,
    step_offsets: Vec<StencilOffset>,
    stencils: Vec<Arc<AnnulusStencil>>,
    next: Vec<(u32, f64)>,
    bp_cells: Vec<u32>,
    bp_prevs: Vec<u32>,
    frame_ends: Vec<u32>,
    pool: Vec<BeamFrame>,
    artifacts: Option<Arc<DecodeArtifacts>>,
}

impl FixedLagDecoder {
    /// New decoder starting at `start`, with `lag` retained frames
    /// (`usize::MAX` = never commit early, i.e. exact batch behaviour).
    pub fn new(
        grid: Grid,
        antennas: [Vec3; 2],
        start: Vec2,
        config: HmmConfig,
        beam_width: usize,
        lag: usize,
    ) -> FixedLagDecoder {
        let frontier = vec![(grid.index_of(start) as u32, 0.0)];
        FixedLagDecoder::from_parts(
            grid,
            antennas,
            config,
            beam_width,
            lag,
            frontier,
            Vec::new(),
            Vec::new(),
            DecodeStats::default(),
        )
    }

    /// Rebuild a decoder from checkpointed logical state (scratch state
    /// is reconstructed lazily, bit-identically, on the next step).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        grid: Grid,
        antennas: [Vec3; 2],
        config: HmmConfig,
        beam_width: usize,
        lag: usize,
        frontier: Vec<(u32, f64)>,
        frames: Vec<BeamFrame>,
        committed: Vec<Vec2>,
        stats: DecodeStats,
    ) -> FixedLagDecoder {
        FixedLagDecoder {
            grid,
            antennas,
            config,
            beam_width: beam_width.max(8),
            lag: lag.max(1),
            frontier,
            frames: frames.into(),
            committed,
            stats,
            scores: Vec::new(),
            preds: Vec::new(),
            touched: Vec::new(),
            step_offsets: Vec::new(),
            stencils: Vec::new(),
            next: Vec::new(),
            bp_cells: Vec::new(),
            bp_prevs: Vec::new(),
            frame_ends: Vec::new(),
            pool: Vec::new(),
            artifacts: None,
        }
    }

    /// Consume one observation; returns how many points were committed
    /// (0 while within the lag, 1 once the pipeline is full).
    pub fn step(&mut self, obs: &StepObservation) -> usize {
        // Resolve (or reuse) the rig's shared emission table only when
        // the step carries a hyperbola measurement — same laziness rule
        // as the batch decoder, same bits either way (the table caches
        // the exact values `expected_dtheta21` returns). N concurrent
        // sessions on one rig resolve to one process-wide table.
        let emission: Option<&EmissionTable> = if obs.dtheta21.is_some() {
            let stale = self
                .artifacts
                .as_ref()
                .map_or(true, |a| !a.matches(&self.grid, self.antennas, self.config.wavelength_m));
            if stale {
                self.artifacts =
                    Some(artifacts_for(&self.grid, self.antennas, self.config.wavelength_m));
            }
            self.artifacts.as_ref().map(|a| a.emission().as_ref())
        } else {
            None
        };

        self.stats.steps += 1;
        self.bp_cells.clear();
        self.bp_prevs.clear();
        self.frame_ends.clear();
        advance_frontier(
            &self.grid,
            self.antennas,
            &self.config,
            self.beam_width,
            obs,
            emission,
            &mut self.scores,
            &mut self.preds,
            &mut self.touched,
            &mut self.step_offsets,
            &mut self.stencils,
            &mut self.frontier,
            &mut self.next,
            &mut self.bp_cells,
            &mut self.bp_prevs,
            &mut self.frame_ends,
            &mut self.stats,
        );
        // Move the single new flat frame into the retained deque,
        // recycling a pooled frame's buffers when available.
        let mut frame = self.pool.pop().unwrap_or_default();
        frame.cells.clear();
        frame.cells.extend_from_slice(&self.bp_cells);
        frame.prevs.clear();
        frame.prevs.extend_from_slice(&self.bp_prevs);
        self.frames.push_back(frame);

        let mut newly_committed = 0;
        while self.frames.len() > self.lag {
            self.commit_oldest();
            newly_committed += 1;
        }
        newly_committed
    }

    /// Resolve and free the oldest retained frame: trace the current
    /// best path back to it and commit its cell centre. Mirrors one
    /// ring of the batch backtrack; the `None` arm matches the batch
    /// `break` (which silently truncates the earliest points) and is
    /// unreachable for frames this decoder built itself.
    fn commit_oldest(&mut self) {
        let mut idx = self
            .frontier
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(c, _)| c)
            .unwrap_or(0);
        let mut reached = true;
        for f in (1..self.frames.len()).rev() {
            match self.frames[f].cells.iter().position(|&c| c == idx) {
                Some(k) => idx = self.frames[f].prevs[k],
                None => {
                    reached = false;
                    break;
                }
            }
        }
        if reached {
            self.committed.push(self.grid.center(idx as usize));
        }
        if let Some(frame) = self.frames.pop_front() {
            self.pool.push(frame);
        }
    }

    /// Backtrack the retained frames (identical code shape to the batch
    /// decoders) and return `committed ++ tail`; the decoder is left
    /// empty. With `lag ≥ steps` this is the whole batch output.
    pub fn finish(&mut self) -> Vec<Vec2> {
        let mut idx = self
            .frontier
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(c, _)| c)
            .unwrap_or(0);
        let mut rev = Vec::with_capacity(self.frames.len());
        for f in (0..self.frames.len()).rev() {
            rev.push(self.grid.center(idx as usize));
            match self.frames[f].cells.iter().position(|&c| c == idx) {
                Some(k) => idx = self.frames[f].prevs[k],
                None => break,
            }
        }
        rev.reverse();
        let mut out = std::mem::take(&mut self.committed);
        out.extend(rev);
        self.frames.clear();
        out
    }

    /// Work counters so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Points already committed (beyond the lag horizon).
    pub fn committed(&self) -> &[Vec2] {
        &self.committed
    }

    /// Current frontier, canonically ordered.
    pub fn frontier(&self) -> &[(u32, f64)] {
        &self.frontier
    }

    /// Retained (uncommitted) backpointer frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &BeamFrame> {
        self.frames.iter()
    }

    /// Number of retained frames (≤ lag).
    pub fn retained(&self) -> usize {
        self.frames.len()
    }

    /// The decision lag, in steps.
    pub fn lag(&self) -> usize {
        self.lag
    }

    /// The beam width.
    pub fn beam_width(&self) -> usize {
        self.beam_width
    }

    /// The shared rig artifacts this decoder resolved, if any step has
    /// needed them yet (tests use this to assert N sessions share one
    /// entry).
    pub fn artifacts(&self) -> Option<&Arc<DecodeArtifacts>> {
        self.artifacts.as_ref()
    }

    /// The shared emission table this decoder decodes against, if built.
    pub fn emission_table(&self) -> Option<&Arc<EmissionTable>> {
        self.artifacts.as_ref().and_then(|a| a.emission_if_built())
    }
}

/// The retained naive reference decoder: per-frontier-cell
/// [`Grid::neighbourhood`] allocation, per-candidate
/// [`expected_dtheta21`] recomputation, `HashMap` backpointers, and a
/// full frontier sort — the seed implementation, kept verbatim except
/// that beam truncation uses the same canonical total order (score
/// descending, cell ascending) as the optimized decoder, making the two
/// comparable state-for-state. `tests/decoder_equivalence.rs` asserts
/// [`viterbi_beam`] matches this function bit-for-bit; the `decode`
/// bench suite measures the speedup over it.
pub fn viterbi_reference(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> Vec<Vec2> {
    if steps.is_empty() {
        return Vec::new();
    }
    let beam_width = beam_width.max(8);
    let n = grid.len();
    // Frontier: (cell, score) pairs; backpointer log per step.
    let mut frontier: Vec<(u32, f64)> = vec![(grid.index_of(start) as u32, 0.0)];
    let mut backptr: Vec<std::collections::HashMap<u32, u32>> = Vec::with_capacity(steps.len());
    // Dense scratch (score, backpointer) reused across steps; `touched`
    // tracks which entries to reset, keeping each step O(frontier ×
    // annulus) instead of O(cells).
    let mut dense: Vec<(f64, u32)> = vec![(f64::NEG_INFINITY, u32::MAX); n];
    let mut touched: Vec<u32> = Vec::new();

    for obs in steps {
        let max_r = obs.region.max_dist.max(grid.cell_m);
        let dmax = max_r;
        let target = obs.target_dist.min(obs.region.max_dist);
        // Outlier suppression: a candidate well below the (already
        // noise-compensated) lower bound is rejected outright — Eq. 8's
        // hard annulus with generous quantization slack.
        let hard_min = obs.region.min_dist - 2.0 * grid.cell_m;

        for &(from, s_from) in &frontier {
            let c_from = grid.center(from as usize);
            for to in grid.neighbourhood(from as usize, max_r) {
                let c_to = grid.center(to);
                let delta = c_to - c_from;
                let d = delta.norm();
                if d < hard_min {
                    continue;
                }
                let mut s = s_from;
                // Hyperbola term (Fig. 12(c)).
                if let Some(meas) = obs.dtheta21 {
                    let expected = expected_dtheta21(c_to, antennas, config.wavelength_m);
                    let err = wrap_pi(meas - expected).abs() / std::f64::consts::PI;
                    s -= config.hyperbola_weight * err;
                }
                // Distance-consistency term: decoded step length should
                // match the phase-measured displacement.
                let (d_along, w_dist) = match obs.direction {
                    Some(dir) => (dir.dot(delta), config.distance_weight),
                    None => (d, config.distance_weight_still),
                };
                s -= w_dist * ((d_along - target).abs() / dmax).min(2.0);
                // Direction-line term (Fig. 12(b)).
                if let Some(dir) = obs.direction {
                    if d > 1e-12 {
                        let perp = dir.cross(delta).abs();
                        s -= config.direction_weight * (perp / dmax).min(2.0);
                        if dir.dot(delta) < 0.0 {
                            s -= config.backward_penalty;
                        }
                    }
                }
                let entry = &mut dense[to];
                if entry.0 == f64::NEG_INFINITY && entry.1 == u32::MAX {
                    touched.push(to as u32);
                }
                if s > entry.0 {
                    *entry = (s, from);
                }
            }
        }

        if touched.is_empty() {
            // Inconsistent step: carry the frontier through unchanged.
            let bp: std::collections::HashMap<u32, u32> =
                frontier.iter().map(|&(c, _)| (c, c)).collect();
            backptr.push(bp);
            continue;
        }

        let mut next: Vec<(u32, f64)> =
            touched.iter().map(|&c| (c, dense[c as usize].0)).collect();
        // Keep the top `beam_width` states (canonical order).
        next.sort_unstable_by(beam_order);
        next.truncate(beam_width);
        let bp: std::collections::HashMap<u32, u32> = next
            .iter()
            .map(|&(c, _)| (c, dense[c as usize].1))
            .collect();
        backptr.push(bp);
        for &c in &touched {
            dense[c as usize] = (f64::NEG_INFINITY, u32::MAX);
        }
        touched.clear();
        frontier = next;
    }

    // Backtrack from the best final state.
    let mut idx = frontier
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(c, _)| c)
        .unwrap_or(0);
    let mut rev = Vec::with_capacity(steps.len());
    for bp in backptr.iter().rev() {
        rev.push(grid.center(idx as usize));
        match bp.get(&idx) {
            Some(&prev) => idx = prev,
            None => break,
        }
    }
    rev.reverse();
    rev
}

/// Eq. 10: rotate a trajectory about its first point by `−error_rad`
/// to undo the residual initial-azimuth error.
pub fn rotate_trajectory(points: &[Vec2], error_rad: f64) -> Vec<Vec2> {
    let pivot = match points.first() {
        Some(&p) => p,
        None => return Vec::new(),
    };
    let rot = rf_core::Mat2::rotation(-error_rad);
    points.iter().map(|&p| pivot + rot.apply(p - pivot)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(0.2, 0.1), 0.01)
    }

    fn rig() -> [Vec3; 2] {
        [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)]
    }

    #[test]
    fn grid_indexing_round_trips() {
        let g = small_grid();
        for idx in [0, 5, g.len() - 1, g.nx + 3] {
            let c = g.center(idx);
            assert_eq!(g.index_of(c), idx);
        }
    }

    #[test]
    fn grid_clamps_out_of_range_points() {
        let g = small_grid();
        let idx = g.index_of(Vec2::new(-5.0, -5.0));
        assert_eq!(idx, 0);
        let idx = g.index_of(Vec2::new(5.0, 5.0));
        assert_eq!(idx, g.len() - 1);
    }

    #[test]
    fn neighbourhood_radius_is_respected() {
        let g = small_grid();
        let from = g.index_of(Vec2::new(0.1, 0.05));
        let hood = g.neighbourhood(from, 0.02);
        assert!(hood.contains(&from));
        for &idx in &hood {
            assert!(g.center(idx).distance(g.center(from)) <= 0.02 + 1e-9);
        }
        // 2-cell radius: at most a 5×5 patch.
        assert!(hood.len() <= 25);
    }

    #[test]
    fn neighbourhood_clips_at_edges() {
        let g = small_grid();
        let hood = g.neighbourhood(0, 0.02);
        assert!(!hood.is_empty());
        assert!(hood.iter().all(|&i| i < g.len()));
    }

    /// The stencil-backed `neighbourhood` must reproduce the historical
    /// brute-force scan (which visited one extra, always-empty ring)
    /// exactly — same cells, same row-major order.
    #[test]
    fn neighbourhood_matches_bruteforce_scan() {
        let g = small_grid();
        for radius in [0.0, 0.004, 0.01, 0.0173, 0.02, 0.033, 0.5] {
            for from in [0, 7, g.nx - 1, g.len() / 2, g.len() - 1] {
                let c = g.center(from);
                let r_cells = (radius / g.cell_m).ceil() as isize + 1;
                let ix0 = (from % g.nx) as isize;
                let iy0 = (from / g.nx) as isize;
                let mut want = Vec::new();
                for dy in -r_cells..=r_cells {
                    for dx in -r_cells..=r_cells {
                        let ix = ix0 + dx;
                        let iy = iy0 + dy;
                        if ix < 0 || iy < 0 || ix >= g.nx as isize || iy >= g.ny as isize {
                            continue;
                        }
                        let idx = iy as usize * g.nx + ix as usize;
                        if g.center(idx).distance(c) <= radius + 1e-12 {
                            want.push(idx);
                        }
                    }
                }
                assert_eq!(
                    g.neighbourhood(from, radius),
                    want,
                    "radius {radius} from {from}"
                );
            }
        }
    }

    #[test]
    fn stencil_covers_square_and_trims_corners() {
        let st = AnnulusStencil::new(0.01, 4);
        // Full square is 81; the four far corners (|dx|=|dy|=4,
        // distance 4√2 ≈ 5.66 cells) must be trimmed.
        assert!(st.offsets().len() < 81);
        assert!(st.offsets().iter().any(|o| o.dx == 0 && o.dy == -4));
        assert!(!st.offsets().iter().any(|o| o.dx == 4 && o.dy == 4));
        // Row-major order: dy strictly non-decreasing.
        for w in st.offsets().windows(2) {
            assert!(w[0].dy <= w[1].dy);
        }
    }

    #[test]
    fn emission_table_matches_direct_computation() {
        let g = small_grid();
        let table = EmissionTable::build(&g, rig(), 0.3276);
        assert_eq!(table.len(), g.len());
        assert!(!table.is_empty());
        for idx in [0, 3, g.len() / 2, g.len() - 1] {
            let direct = expected_dtheta21(g.center(idx), rig(), 0.3276);
            assert_eq!(table.expected(idx).to_bits(), direct.to_bits(), "cell {idx}");
        }
        assert!(table.matches(&g, rig(), 0.3276));
        assert!(!table.matches(&g, rig(), 0.33));
    }

    #[test]
    fn parallel_table_build_is_bit_identical() {
        let g = small_grid();
        let seq = EmissionTable::build(&g, rig(), 0.3276);
        for threads in [1, 2, 3, 8] {
            let par = EmissionTable::build_parallel(&g, rig(), 0.3276, threads);
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for idx in 0..g.len() {
                assert_eq!(
                    par.expected(idx).to_bits(),
                    seq.expected(idx).to_bits(),
                    "cell {idx}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn artifacts_cache_shares_one_entry_per_rig() {
        let g = small_grid();
        let a = artifacts_for(&g, rig(), 0.3276);
        let b = artifacts_for(&g, rig(), 0.3276);
        assert!(Arc::ptr_eq(&a, &b), "same rig resolves to the same entry");
        // The emission table is built once and shared by pointer.
        assert!(Arc::ptr_eq(a.emission(), b.emission()));
        assert_eq!(
            a.emission().expected(3).to_bits(),
            expected_dtheta21(g.center(3), rig(), 0.3276).to_bits()
        );
        // A different rig gets its own entry.
        let other = artifacts_for(&g, rig(), 0.33);
        assert!(!Arc::ptr_eq(&a, &other));
        assert!(other.matches(&g, rig(), 0.33) && !other.matches(&g, rig(), 0.3276));
    }

    #[test]
    fn shared_stencils_deduplicate_across_callers() {
        let a = shared_stencil(0.01, 3);
        let b = shared_stencil(0.01, 3);
        assert!(Arc::ptr_eq(&a, &b), "same key resolves to the same stencil");
        assert_eq!(a.offsets(), AnnulusStencil::new(0.01, 3).offsets());
        let c = shared_stencil(0.01, 4);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    fn moving_step(min_dist: f64, max_dist: f64, dir: Option<Vec2>) -> StepObservation {
        StepObservation {
            region: FeasibleRegion { min_dist, max_dist },
            direction: dir,
            dtheta21: None,
            target_dist: min_dist,
        }
    }

    #[test]
    fn direction_prior_drives_a_straight_track() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let dir = Vec2::new(1.0, 0.0);
        // Phase measures ~8 mm of motion per step along `dir`.
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(dir))).collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), 10);
        let end = track.last().unwrap();
        assert!(end.x > start.x + 0.05, "track must progress rightward, got {end:?}");
        assert!((end.y - start.y).abs() < 0.02, "and stay level");
    }

    #[test]
    fn annulus_lower_bound_forces_motion() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let steps: Vec<StepObservation> = (0..5)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.009, max_dist: 0.012 },
                direction: Some(Vec2::new(1.0, 0.0)),
                dtheta21: None,
                target_dist: 0.009,
            })
            .collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        for w in track.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d > 0.004, "lower bound must prevent standing still, step {d}");
        }
    }

    #[test]
    fn hyperbola_term_pulls_toward_consistent_cells() {
        let g = Grid::covering(Vec2::new(-0.1, 0.55), Vec2::new(0.1, 0.75), 0.01);
        let rig = rig();
        let cfg = HmmConfig::default();
        let target = Vec2::new(0.06, 0.65);
        let meas = expected_dtheta21(target, rig, cfg.wavelength_m);
        // No direction prior; generous annulus; repeated consistent
        // measurements should walk the track onto the target hyperbola.
        let steps: Vec<StepObservation> = (0..12)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.01, max_dist: 0.015 },
                direction: None,
                dtheta21: Some(meas),
                target_dist: 0.01,
            })
            .collect();
        let track = viterbi(&g, rig, Vec2::new(-0.05, 0.65), &steps, &cfg);
        let end = *track.last().unwrap();
        let end_err = wrap_pi(expected_dtheta21(end, rig, cfg.wavelength_m) - meas).abs();
        let start_err =
            wrap_pi(expected_dtheta21(Vec2::new(-0.05, 0.65), rig, cfg.wavelength_m) - meas)
                .abs();
        assert!(
            end_err < start_err * 0.5,
            "end phase error {end_err} should beat start {start_err}"
        );
    }

    #[test]
    fn empty_steps_give_empty_track() {
        let g = small_grid();
        assert!(viterbi(&g, rig(), Vec2::ZERO, &[], &HmmConfig::default()).is_empty());
        let (track, stats) =
            viterbi_with_stats(&g, rig(), Vec2::ZERO, &[], &HmmConfig::default(), 64);
        assert!(track.is_empty());
        assert_eq!(stats, DecodeStats::default());
    }

    #[test]
    fn inconsistent_annulus_does_not_derail_decoding() {
        let g = small_grid();
        let start = Vec2::new(0.05, 0.05);
        let mut steps: Vec<StepObservation> =
            (0..4).map(|_| moving_step(0.006, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        // Impossible step: min > max (a spurious reading survived).
        steps.insert(
            2,
            StepObservation {
                region: FeasibleRegion { min_dist: 0.08, max_dist: 0.012 },
                direction: None,
                dtheta21: None,
                target_dist: 0.012,
            },
        );
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), steps.len(), "decoder must survive the bad step");
        // The carried-through step is visible in the work counters.
        let (_, stats) =
            viterbi_with_stats(&g, rig(), start, &steps, &HmmConfig::default(), 64);
        assert_eq!(stats.steps, steps.len());
        assert_eq!(stats.carried_steps, 1);
    }

    #[test]
    fn optimized_matches_reference_on_scenarios() {
        let g = small_grid();
        let rig = rig();
        let cfg = HmmConfig::default();
        let meas = expected_dtheta21(Vec2::new(0.06, 0.05), rig, cfg.wavelength_m);
        let scenarios: Vec<(Vec<StepObservation>, usize)> = vec![
            ((0..10).map(|_| moving_step(0.008, 0.012, Some(Vec2::new(1.0, 0.0)))).collect(), 2500),
            ((0..6).map(|_| moving_step(0.0, 0.02, None)).collect(), 16),
            (
                (0..8)
                    .map(|i| StepObservation {
                        region: FeasibleRegion { min_dist: 0.004, max_dist: 0.015 },
                        direction: if i % 2 == 0 { Some(Vec2::from_angle(i as f64)) } else { None },
                        dtheta21: Some(meas),
                        target_dist: 0.006,
                    })
                    .collect(),
                1, // exercises the beam_width < 8 clamp
            ),
        ];
        for (steps, beam) in scenarios {
            let fast = viterbi_beam(&g, rig, Vec2::new(0.02, 0.05), &steps, &cfg, beam);
            let slow = viterbi_reference(&g, rig, Vec2::new(0.02, 0.05), &steps, &cfg, beam);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                    "beam {beam}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn stats_count_decoder_work() {
        let g = small_grid();
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        let (track, stats) =
            viterbi_with_stats(&g, rig(), Vec2::new(0.02, 0.05), &steps, &HmmConfig::default(), 64);
        assert_eq!(track.len(), 10);
        assert_eq!(stats.steps, 10);
        assert_eq!(stats.carried_steps, 0);
        assert!(stats.expansions > 0);
        assert!(stats.touched_cells > 0);
        assert!(stats.max_frontier >= 1 && stats.max_frontier <= 64);
        assert!(stats.mean_frontier() >= 1.0);
        // Every scored candidate either survived or was pruned.
        assert!(stats.expansions >= stats.pruned_below_min + stats.touched_cells);
    }

    /// Scratch caches (stencils, emission table) must invalidate
    /// correctly when the rig or grid changes between calls.
    #[test]
    fn scratch_reuse_across_rigs_is_sound() {
        let mut scratch = DecoderScratch::new();
        let cfg = HmmConfig::default();
        let g1 = small_grid();
        let g2 = Grid::covering(Vec2::new(-0.1, 0.55), Vec2::new(0.1, 0.75), 0.008);
        let rig1 = rig();
        let rig2 = [Vec3::new(-0.4, 0.1, 0.5), Vec3::new(0.4, 0.1, 0.5)];
        let mk = |g: &Grid, r: [Vec3; 2]| -> Vec<StepObservation> {
            let meas = expected_dtheta21(g.center(g.len() / 2), r, cfg.wavelength_m);
            (0..6)
                .map(|_| StepObservation {
                    region: FeasibleRegion { min_dist: 0.004, max_dist: 0.012 },
                    direction: None,
                    dtheta21: Some(meas),
                    target_dist: 0.005,
                })
                .collect()
        };
        for (g, r) in [(&g1, rig1), (&g2, rig2), (&g1, rig1), (&g1, rig2)] {
            let steps = mk(g, r);
            let start = g.center(0);
            let (warm, _) =
                viterbi_with_scratch(g, r, start, &steps, &cfg, 128, &mut scratch);
            let (cold, _) =
                viterbi_with_scratch(g, r, start, &steps, &cfg, 128, &mut DecoderScratch::new());
            assert_eq!(warm, cold);
            assert_eq!(warm, viterbi_reference(g, r, start, &steps, &cfg, 128));
        }
    }

    /// Mixed scenario steps for streaming tests: direction priors,
    /// hyperbola measurements, a still step, and an impossible annulus.
    fn mixed_steps() -> Vec<StepObservation> {
        let g = small_grid();
        let meas = expected_dtheta21(Vec2::new(0.06, 0.05), rig(), 0.3276);
        let mut steps: Vec<StepObservation> = (0..9)
            .map(|i| StepObservation {
                region: FeasibleRegion { min_dist: 0.004, max_dist: 0.014 },
                direction: if i % 3 == 0 { Some(Vec2::from_angle(i as f64 * 0.7)) } else { None },
                dtheta21: if i % 2 == 0 { Some(meas) } else { None },
                target_dist: 0.006,
            })
            .collect();
        steps.insert(
            4,
            StepObservation {
                region: FeasibleRegion { min_dist: 0.09, max_dist: 0.01 },
                direction: None,
                dtheta21: None,
                target_dist: 0.01,
            },
        );
        let _ = g;
        steps
    }

    #[test]
    fn fixed_lag_with_infinite_lag_matches_batch_bitwise() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        for beam in [4usize, 64, 2500] {
            let (batch, batch_stats) =
                viterbi_with_stats(&g, rig(), start, &steps, &cfg, beam);
            let mut dec = FixedLagDecoder::new(g, rig(), start, cfg, beam, usize::MAX);
            for obs in &steps {
                assert_eq!(dec.step(obs), 0, "infinite lag must never commit early");
            }
            let stream_stats = dec.stats();
            let stream = dec.finish();
            assert_eq!(stream.len(), batch.len());
            for (a, b) in stream.iter().zip(&batch) {
                assert!(
                    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                    "beam {beam}: {a:?} vs {b:?}"
                );
            }
            assert_eq!(stream_stats, batch_stats, "work counters must agree");
        }
    }

    #[test]
    fn fixed_lag_commits_incrementally_with_bounded_frames() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        let lag = 3;
        let mut dec = FixedLagDecoder::new(g, rig(), start, cfg, 64, lag);
        let mut committed = 0;
        for (i, obs) in steps.iter().enumerate() {
            committed += dec.step(obs);
            assert!(dec.retained() <= lag, "frames bounded by lag");
            let expect = (i + 1).saturating_sub(lag);
            assert_eq!(committed, expect, "one commit per step past the lag");
            assert_eq!(dec.committed().len(), committed);
        }
        let track = dec.finish();
        assert_eq!(track.len(), steps.len());
        // The committed prefix is frozen: finish() must not rewrite it.
        let (batch, _) = viterbi_with_stats(&g, rig(), start, &steps, &cfg, 64);
        assert_eq!(track.len(), batch.len());
    }

    #[test]
    fn fixed_lag_restores_from_parts_and_continues_bitwise() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let cfg = HmmConfig::default();
        let steps = mixed_steps();
        let lag = 4;
        // Uninterrupted run.
        let mut full = FixedLagDecoder::new(g, rig(), start, cfg, 32, lag);
        for obs in &steps {
            full.step(obs);
        }
        let want = full.finish();
        // Cut at every point, clone logical state through from_parts.
        for cut in 0..=steps.len() {
            let mut a = FixedLagDecoder::new(g, rig(), start, cfg, 32, lag);
            for obs in &steps[..cut] {
                a.step(obs);
            }
            let mut b = FixedLagDecoder::from_parts(
                g,
                rig(),
                cfg,
                32,
                lag,
                a.frontier().to_vec(),
                a.frames().cloned().collect(),
                a.committed().to_vec(),
                a.stats(),
            );
            for obs in &steps[cut..] {
                b.step(obs);
            }
            let got = b.finish();
            assert_eq!(got.len(), want.len(), "cut {cut}");
            for (p, q) in got.iter().zip(&want) {
                assert!(
                    p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
                    "cut {cut}: {p:?} vs {q:?}"
                );
            }
        }
    }

    #[test]
    fn rotate_trajectory_pivots_on_first_point() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(2.0, 1.0)];
        let rot = rotate_trajectory(&pts, std::f64::consts::FRAC_PI_2);
        assert_eq!(rot[0], pts[0], "pivot is fixed");
        // Rotating by −π/2 (cw on screen) maps +X offset to −Y... in our
        // y-down convention: (x=0, y=−1) offset.
        assert!((rot[1].x - 1.0).abs() < 1e-12);
        assert!((rot[1].y - 0.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_empty_trajectory() {
        assert!(rotate_trajectory(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_grid_panics() {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(-1.0, 1.0), 0.01);
    }
}
