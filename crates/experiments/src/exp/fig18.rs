//! Figure 18: word recognition accuracy vs word length, three systems.
//!
//! Ten dictionary words per length group (2–5 letters), written and
//! recognized against the group as candidate set. The paper finds all
//! three systems >91 % at two letters, degrading gently with length;
//! two-antenna PolarDraw degrades slightly more but stays above 75 %.

use crate::report::Report;
use crate::runner::{run_word_trials, RunOpts};
use crate::setup::{TrackerKind, TrialSetup};
use pen_sim::words::all_groups;

/// The systems compared, in figure-legend order.
pub const SYSTEMS: [TrackerKind; 3] =
    [TrackerKind::PolarDraw, TrackerKind::RfIdraw4, TrackerKind::Tagoram4];

/// Run the word-length sweep for all three systems.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fig18",
        "Word recognition accuracy vs word length",
        ">91 % at 2 letters for all; PolarDraw degrades slightly more with length but stays >75 %",
    )
    .headers(vec![
        "Letters/word",
        "PolarDraw 2-ant (%)",
        "RF-IDraw 4-ant (%)",
        "Tagoram 4-ant (%)",
    ]);
    // Words are long to write; keep per-word repetitions low.
    let trials_per = opts.trials.div_ceil(4).max(1);
    for (len, words) in all_groups() {
        let mut row = vec![len.to_string()];
        for kind in SYSTEMS {
            let base = TrialSetup::word(words[0]).with_tracker(kind);
            let acc = run_word_trials(
                words,
                &base,
                trials_per,
                opts.seed.wrapping_add(400 + len as u64),
                opts,
            );
            row.push(format!("{:.0}", 100.0 * acc));
        }
        report.push_row(row);
    }
    report.push_note("dictionary-constrained matching: candidates are the 10 words of the group");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_systems_in_legend_order() {
        assert_eq!(SYSTEMS.len(), 3);
        assert_eq!(SYSTEMS[0], TrackerKind::PolarDraw);
    }
}
