//! Property tests over the workspace's core invariants, run as
//! deterministic seeded sweeps.
//!
//! Each property draws its cases from `derive_seed_indexed(BASE_SEED,
//! label, i)`, so every case is reproducible from the (label, index)
//! pair printed in a failing assertion — no shrinker needed, no
//! external property-testing crate, and the exact same inputs on every
//! machine and every run.

use recognition::procrustes::align;
use recognition::resample::{prepare, resample};
use rf_core::angle::{phase_diff, unwrap_phases, wrap_pi, wrap_tau};
use rf_core::rng::{derive_seed_indexed, Rng64};
use rf_core::{Mat2, Vec2, Vec3};
use rfid_sim::llrp;
use rfid_sim::TagReport;
use std::f64::consts::{PI, TAU};

/// Root seed for every sweep in this file.
const BASE_SEED: u64 = 42;

/// Standard case count for cheap properties (the ISSUE floor).
const CASES: usize = 256;

/// Run `body` once per derived-seed case. The `ctx` string handed to
/// the body names the property, the case index, and the seed — include
/// it in every assertion message so a failure pinpoints its input.
fn sweep<F: FnMut(&mut Rng64, &str)>(label: &str, cases: usize, mut body: F) {
    for i in 0..cases {
        let seed = derive_seed_indexed(BASE_SEED, label, i as u64);
        let mut rng = Rng64::from_seed(seed);
        let ctx = format!("{label} case {i} (seed {seed:#018x})");
        body(&mut rng, &ctx);
    }
}

fn random_points(rng: &mut Rng64, n: usize, lo: f64, hi: f64) -> Vec<Vec2> {
    (0..n).map(|_| Vec2::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi))).collect()
}

#[test]
fn wrap_tau_round_trips_the_circle() {
    sweep("wrap_tau", CASES, |rng, ctx| {
        let a = rng.gen_range(-1e6..1e6);
        let w = wrap_tau(a);
        assert!((0.0..TAU).contains(&w), "{ctx}: wrap_tau({a}) = {w} out of [0, τ)");
        // Same point on the circle.
        assert!((w.sin() - a.sin()).abs() < 1e-6, "{ctx}: sin mismatch for a={a}");
        assert!((w.cos() - a.cos()).abs() < 1e-6, "{ctx}: cos mismatch for a={a}");
    });
}

#[test]
fn wrap_pi_round_trips_the_circle() {
    sweep("wrap_pi", CASES, |rng, ctx| {
        let a = rng.gen_range(-1e6..1e6);
        let w = wrap_pi(a);
        assert!((-PI..=PI).contains(&w), "{ctx}: wrap_pi({a}) = {w} out of [-π, π]");
        assert!((w.sin() - a.sin()).abs() < 1e-6, "{ctx}: sin mismatch for a={a}");
        assert!((w.cos() - a.cos()).abs() < 1e-6, "{ctx}: cos mismatch for a={a}");
    });
}

#[test]
fn phase_diff_is_antisymmetric_on_the_circle() {
    sweep("phase_diff_antisym", CASES, |rng, ctx| {
        let a = rng.gen_range(0.0..TAU);
        let b = rng.gen_range(0.0..TAU);
        let d1 = phase_diff(a, b);
        let d2 = phase_diff(b, a);
        // Antisymmetric except at the ±π branch point.
        if d1.abs() < PI - 1e-9 {
            assert!((d1 + d2).abs() < 1e-9, "{ctx}: a={a} b={b} d1={d1} d2={d2}");
        }
    });
}

#[test]
fn unwrap_preserves_circle_positions() {
    sweep("unwrap_phases", CASES, |rng, ctx| {
        let n = 1 + rng.gen_index(80);
        let phases: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..TAU)).collect();
        let unwrapped = unwrap_phases(&phases);
        assert_eq!(unwrapped.len(), phases.len(), "{ctx}: length changed");
        for (u, p) in unwrapped.iter().zip(&phases) {
            assert!(
                (wrap_tau(*u) - wrap_tau(*p)).abs() < 1e-9,
                "{ctx}: circle position moved: {u} vs {p}"
            );
        }
        // Adjacent steps never exceed π in magnitude.
        for w in unwrapped.windows(2) {
            assert!((w[1] - w[0]).abs() <= PI + 1e-9, "{ctx}: step {} → {}", w[0], w[1]);
        }
    });
}

#[test]
fn rotation_matrices_preserve_length() {
    sweep("rotation_isometry", CASES, |rng, ctx| {
        let angle = rng.gen_range(-10.0..10.0);
        let v = Vec2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
        let r = Mat2::rotation(angle).apply(v);
        assert!(
            (r.norm() - v.norm()).abs() < 1e-9,
            "{ctx}: |Rv|={} but |v|={} (angle {angle})",
            r.norm(),
            v.norm()
        );
    });
}

#[test]
fn vec3_rejection_is_orthogonal() {
    sweep("vec3_rejection", CASES, |rng, ctx| {
        let v = Vec3::new(
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
        );
        let raw_axis = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if let Some(axis) = raw_axis.normalized() {
            let r = v.reject_from(axis);
            assert!(r.dot(axis).abs() < 1e-9, "{ctx}: rejection not orthogonal: {}", r.dot(axis));
        }
    });
}

#[test]
fn resample_preserves_endpoints_and_count() {
    sweep("resample", CASES, |rng, ctx| {
        let count = 2 + rng.gen_index(28);
        let pts = random_points(rng, count, -1.0, 1.0);
        let n = 2 + rng.gen_index(98);
        let length: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
        if length <= 1e-6 {
            return; // degenerate polyline: out of scope for this property
        }
        let rs = resample(&pts, n).unwrap_or_else(|| panic!("{ctx}: resample returned None"));
        assert_eq!(rs.len(), n, "{ctx}: wrong count");
        assert!(rs[0].distance(pts[0]) < 1e-9, "{ctx}: start moved");
        assert!(rs[n - 1].distance(*pts.last().unwrap()) < 1e-6, "{ctx}: end moved");
    });
}

#[test]
fn procrustes_removes_any_similarity_transform() {
    sweep("procrustes_invariance", CASES, |rng, ctx| {
        let count = 4 + rng.gen_index(16);
        let pts = random_points(rng, count, -1.0, 1.0);
        let angle = rng.gen_range(-3.0..3.0);
        let scale = rng.gen_range(0.2..4.0);
        let shift = Vec2::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
        // Need genuine 2-D extent for a well-posed alignment.
        if prepare(&pts, 16).is_none() {
            return;
        }
        let rot = Mat2::rotation(angle);
        let moved: Vec<Vec2> = pts.iter().map(|&p| rot.apply(p) * scale + shift).collect();
        let a = align(&pts, &moved, f64::INFINITY)
            .unwrap_or_else(|| panic!("{ctx}: alignment failed"));
        assert!(
            a.rms_residual < 1e-6,
            "{ctx}: residual {} after rot {angle}, scale {scale}",
            a.rms_residual
        );
    });
}

#[test]
fn llrp_round_trips_arbitrary_reports() {
    // Frame encode/decode over a full inventory is comparatively heavy;
    // 64 sweeps × up to 40 reports still covers the packing edge cases.
    sweep("llrp_round_trip", 64, |rng, ctx| {
        let n = rng.gen_index(41);
        let reports: Vec<TagReport> = (0..n)
            .map(|_| TagReport {
                t: rng.gen_range(0.0..1000.0),
                antenna: rng.gen_index(4),
                rssi_dbm: rng.gen_range(-90.0..0.0),
                phase_rad: rng.gen_range(0.0..TAU),
                channel: rng.gen_index(50),
                epc: rng.next_u64(),
            })
            .collect();
        let frame = llrp::encode_report(&reports, 9);
        let (id, decoded) =
            llrp::decode_report(&frame).unwrap_or_else(|e| panic!("{ctx}: decode failed: {e:?}"));
        assert_eq!(id, 9, "{ctx}: antenna id changed");
        assert_eq!(decoded.len(), reports.len(), "{ctx}: report count changed");
        for (a, b) in reports.iter().zip(&decoded) {
            assert_eq!(a.antenna, b.antenna, "{ctx}");
            assert_eq!(a.channel, b.channel, "{ctx}");
            assert_eq!(a.epc, b.epc, "{ctx}");
            assert!((a.t - b.t).abs() < 1e-5, "{ctx}: t {} vs {}", a.t, b.t);
            assert!(
                (a.rssi_dbm - b.rssi_dbm).abs() <= 0.005 + 1e-9,
                "{ctx}: rssi {} vs {}",
                a.rssi_dbm,
                b.rssi_dbm
            );
            assert!(
                rf_core::angle::phase_distance(a.phase_rad, b.phase_rad)
                    <= TAU / 65536.0 + 1e-9,
                "{ctx}: phase {} vs {}",
                a.phase_rad,
                b.phase_rad
            );
        }
    });
}

#[test]
fn polarization_coupling_is_bounded() {
    sweep("coupling_bounded", CASES, |rng, ctx| {
        let pos = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(0.1..2.0),
        );
        let dipole = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let pol = rng.gen_range(0.0..TAU);
        let axis = Vec3::new(pol.cos(), pol.sin(), 0.0);
        let c = rf_physics::polarization::coupling(pos, axis, Vec3::ZERO, dipole);
        assert!((-1.0..=1.0).contains(&c), "{ctx}: coupling {c}");
    });
}

#[test]
fn free_space_phase_advances_with_range() {
    // Eq. 5: phase grows at 4π/λ per metre of range — so it is strictly
    // monotone in distance over any sub-half-wavelength step, and the
    // slope matches the closed form.
    sweep("phase_vs_range", CASES, |rng, ctx| {
        use rf_physics::antenna::Antenna;
        let x = rng.gen_range(-0.3..0.3);
        let y = rng.gen_range(0.4..0.9);
        let step_mm = rng.gen_range(0.5..3.0);
        let ant = Antenna::linear(Vec3::new(0.0, 0.15, 0.65), -Vec3::Z, Vec3::X);
        let ant_pos = ant.position;
        let ch = rf_physics::ChannelModel::free_space(vec![ant]);
        let lambda = ch.plan.wavelength_at(0.0);
        let p1 = Vec3::new(x, y, 0.0);
        let dir = (p1 - ant_pos).normalized().unwrap();
        let p2 = p1 + dir * (step_mm / 1000.0);
        let o1 = ch.evaluate(0, p1, Vec3::X, 0.0);
        let o2 = ch.evaluate(0, p2, Vec3::X, 0.0);
        if !(o1.tag_powered && o2.tag_powered) {
            return;
        }
        let d_true = p2.distance(ant_pos) - p1.distance(ant_pos);
        let expect = 4.0 * PI * d_true / lambda;
        let measured = phase_diff(o2.phase_rad, o1.phase_rad);
        assert!(measured > 0.0, "{ctx}: phase did not advance with range ({measured})");
        assert!(
            (measured - expect).abs() < 1e-6,
            "{ctx}: measured {measured} expected {expect}"
        );
    });
}

#[test]
fn free_space_rss_is_monotone_in_mismatch() {
    sweep("rss_monotone_mismatch", CASES, |rng, ctx| {
        // Broadside free space: larger polarization mismatch, lower RSS.
        use rf_physics::antenna::Antenna;
        let b1 = rng.gen_range(0.0..1.45);
        let b2 = rng.gen_range(0.0..1.45);
        let ant = Antenna::linear(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z, Vec3::X);
        let ch = rf_physics::ChannelModel::free_space(vec![ant]);
        let rss =
            |b: f64| ch.evaluate(0, Vec3::ZERO, Vec3::new(b.cos(), b.sin(), 0.0), 0.0).rx_power_dbm;
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        if hi - lo <= 1e-3 {
            return;
        }
        assert!(rss(lo) >= rss(hi) - 1e-9, "{ctx}: β {lo} vs {hi}");
    });
}

#[test]
fn mismatch_loss_is_symmetric_in_beta() {
    // The cos²β mismatch factor (Eq. 2) only sees the angle *between*
    // dipole and antenna polarization: flipping the sign of β or adding
    // π to it must not change the received power.
    sweep("cos2_beta_symmetry", CASES, |rng, ctx| {
        use rf_physics::antenna::Antenna;
        let beta = rng.gen_range(-1.45..1.45);
        let ant = Antenna::linear(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z, Vec3::X);
        let ch = rf_physics::ChannelModel::free_space(vec![ant]);
        let rss =
            |b: f64| ch.evaluate(0, Vec3::ZERO, Vec3::new(b.cos(), b.sin(), 0.0), 0.0).rx_power_dbm;
        let direct = rss(beta);
        let mirrored = rss(-beta);
        let flipped = rss(beta + PI);
        assert!(
            (direct - mirrored).abs() < 1e-9,
            "{ctx}: rss({beta}) = {direct} but rss({}) = {mirrored}",
            -beta
        );
        assert!(
            (direct - flipped).abs() < 1e-9,
            "{ctx}: rss({beta}) = {direct} but rss(β+π) = {flipped}"
        );
    });
}

#[test]
fn reader_quantization_is_idempotent() {
    sweep("quantization_idempotent", CASES, |rng, ctx| {
        use rfid_sim::reader::{quantize_phase, quantize_rssi};
        let rssi = rng.gen_range(-90.0..-10.0);
        let phase = rng.gen_range(0.0..TAU);
        let r1 = quantize_rssi(rssi, 0.5);
        assert_eq!(quantize_rssi(r1, 0.5), r1, "{ctx}: rssi {rssi}");
        let p1 = quantize_phase(phase, 12);
        assert!((quantize_phase(p1, 12) - p1).abs() < 1e-12, "{ctx}: phase {phase}");
    });
}

#[test]
fn kalman_smoother_preserves_length_and_stability() {
    // The RTS smoother over a 60-point track is the most expensive body
    // here; 64 sweeps keep the test fast while varying track length.
    sweep("kalman_smoother", 64, |rng, ctx| {
        use polardraw_core::smoother::{smooth, SmootherConfig};
        let n = 3 + rng.gen_index(57);
        let points: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen_range(-0.3..0.3), rng.gen_range(0.4..0.9)))
            .collect();
        let times: Vec<f64> = (0..points.len()).map(|i| i as f64 * 0.05).collect();
        let out = smooth(&times, &points, &SmootherConfig::default());
        assert_eq!(out.len(), points.len(), "{ctx}: length changed");
        // Smoothed points stay within the measurement cloud's bounding
        // box padded by a few sigmas — no runaway filter states.
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for p in &points {
            x0 = x0.min(p.x);
            x1 = x1.max(p.x);
            y0 = y0.min(p.y);
            y1 = y1.max(p.y);
        }
        for p in &out {
            assert!(
                p.x >= x0 - 0.05 && p.x <= x1 + 0.05 && p.y >= y0 - 0.05 && p.y <= y1 + 0.05,
                "{ctx}: smoothed point {:?} left the padded bounding box",
                (p.x, p.y)
            );
            assert!(p.x.is_finite() && p.y.is_finite(), "{ctx}: non-finite output");
        }
    });
}

#[test]
fn glyph_rendering_is_total_over_ascii_words() {
    // Rendering a full word through the wrist model costs ~ms per case;
    // 32 sweeps of up to 6 letters still hit every glyph repeatedly.
    sweep("glyph_total", 32, |rng, ctx| {
        let len = 1 + rng.gen_index(6);
        let word: String = (0..len).map(|_| (b'A' + rng.gen_index(26) as u8) as char).collect();
        let s = pen_sim::scene::write_text(
            &pen_sim::Scene::default(),
            &pen_sim::WriterProfile::natural(),
            &word,
            3,
        );
        assert!(!s.poses.is_empty(), "{ctx}: empty session for {word:?}");
        for p in &s.poses {
            assert!(
                p.tip.x.is_finite() && p.tip.y.is_finite(),
                "{ctx}: non-finite tip in {word:?}"
            );
            assert!(
                (p.dipole.norm() - 1.0).abs() < 1e-9,
                "{ctx}: non-unit dipole in {word:?}"
            );
        }
    });
}

#[test]
fn feasible_region_is_monotone_in_phase() {
    sweep("feasible_region_monotone", CASES, |rng, ctx| {
        let d1 = rng.gen_range(0.0..3.0);
        let d2 = rng.gen_range(0.0..3.0);
        let cfg = polardraw_core::distance::DistanceConfig::default();
        let small =
            polardraw_core::distance::feasible_region([Some(d1.min(d2)), None], 0.05, &cfg);
        let large =
            polardraw_core::distance::feasible_region([Some(d1.max(d2)), None], 0.05, &cfg);
        assert!(
            small.min_dist <= large.min_dist + 1e-12,
            "{ctx}: d {} vs {} gave min_dist {} vs {}",
            d1.min(d2),
            d1.max(d2),
            small.min_dist,
            large.min_dist
        );
    });
}

// ---------------------------------------------------------------------
// Adversarial report streams (ISSUE 3): the hardened preprocess and the
// full tracker must survive reordering, duplication, out-of-range
// antenna ports, and empty gaps — no panics, monotone window times,
// and read counts conserved.
// ---------------------------------------------------------------------

/// A synthetic plausible-but-random report stream: ~100 Hz, a smooth
/// phase walk per antenna, occasional reports from ports ≥ 2.
fn random_stream(rng: &mut Rng64, n: usize) -> Vec<TagReport> {
    let mut phases = [rng.gen_range(0.0..TAU), rng.gen_range(0.0..TAU)];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // 1 in 16 reports comes from a port the 2-antenna pipeline must
        // ignore (a mis-wired rig or a second reader on the wire).
        let antenna = if rng.gen_bool(1.0 / 16.0) { 2 + rng.gen_index(2) } else { i % 2 };
        if antenna < 2 {
            phases[antenna] = wrap_tau(phases[antenna] + rng.gen_range(-0.08..0.08));
        }
        out.push(TagReport {
            t: i as f64 * 0.01 + rng.gen_range(0.0..0.002),
            antenna,
            rssi_dbm: -45.0 + rng.gen_range(-8.0..8.0),
            phase_rad: if antenna < 2 { phases[antenna] } else { rng.gen_range(0.0..TAU) },
            channel: rng.gen_index(50),
            epc: 0xE280_1160_6000_0001,
        });
    }
    out
}

/// Carve a random interior gap (total outage) out of a stream.
fn carve_gap(rng: &mut Rng64, reports: &mut Vec<TagReport>) {
    if reports.len() < 20 {
        return;
    }
    let start = 5 + rng.gen_index(reports.len() / 2);
    let len = 5 + rng.gen_index(reports.len() / 4);
    let end = (start + len).min(reports.len() - 5);
    reports.drain(start..end);
}

#[test]
fn adversarial_streams_preprocess_cleanly() {
    use polardraw_core::preprocess::{preprocess_with_stats, PreprocessConfig};
    use rfid_sim::faults::{Duplication, FaultInjector, FaultPlan, Reordering};

    sweep("adversarial_preprocess", 128, |rng, ctx| {
        let n = 60 + rng.gen_index(240);
        let mut reports = random_stream(rng, n);
        carve_gap(rng, &mut reports);
        let plan = FaultPlan {
            duplication: Some(Duplication {
                p_duplicate: rng.gen_range(0.0..0.3),
                max_copies: 1 + rng.gen_index(3),
            }),
            reordering: Some(Reordering {
                p_displace: rng.gen_range(0.0..0.5),
                max_shift_s: rng.gen_range(0.005..0.08),
            }),
            ..FaultPlan::identity()
        };
        let injected = FaultInjector::new(plan, rng.next_u64()).inject(&reports);

        let cfg = PreprocessConfig::default();
        let (windows, stats) = preprocess_with_stats(&injected, &cfg);

        // Window times strictly monotone.
        for w in windows.windows(2) {
            assert!(w[0].t < w[1].t, "{ctx}: window times not monotone");
        }
        // Reads conserved: every injected antenna<2 report lands in
        // exactly one window, minus the exact duplicates preprocess
        // removes. Duplicates are exact copies adjacent after the stable
        // sort (timestamps are untouched by reordering), so the expected
        // count is the sorted-adjacent-unique count.
        let mut sorted = injected.clone();
        sorted.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut expected = 0usize;
        for (i, r) in sorted.iter().enumerate() {
            if r.antenna < 2 && (i == 0 || sorted[i - 1] != *r) {
                expected += 1;
            }
        }
        let total_reads: usize = windows.iter().map(|w| w.reads[0] + w.reads[1]).sum();
        assert_eq!(total_reads, expected, "{ctx}: reads not conserved");
        assert_eq!(
            stats.ignored_ports,
            sorted.len() - stats.duplicates_removed
                - windows.iter().map(|w| w.reads[0] + w.reads[1]).sum::<usize>(),
            "{ctx}: ignored-port accounting inconsistent"
        );
    });
}

#[test]
fn adversarial_streams_track_without_panicking() {
    use polardraw_core::{PolarDraw, PolarDrawConfig};
    use rfid_sim::faults::{FaultInjector, FaultPlan};

    // Full pipeline on composite-fault streams. Fewer cases and a
    // coarse grid: each case runs a whole Viterbi decode.
    sweep("adversarial_track", 48, |rng, ctx| {
        let n = 120 + rng.gen_index(200);
        let mut reports = random_stream(rng, n);
        carve_gap(rng, &mut reports);
        let intensity = rng.gen_range(0.0..1.0);
        let injected =
            FaultInjector::new(FaultPlan::at_intensity(intensity), rng.next_u64()).inject(&reports);

        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m = 0.02; // coarse: keep 48 decodes cheap
        let out = PolarDraw::new(cfg).track_with_diagnostics(&injected);

        for p in &out.trail.points {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "{ctx}: non-finite trail point at intensity {intensity:.2}"
            );
        }
        for t in out.trail.times.windows(2) {
            assert!(t[0] < t[1], "{ctx}: trail times not monotone");
        }
        assert_eq!(out.degradation.windows, out.windows.len(), "{ctx}: window count mismatch");
        // The degradation report must acknowledge a carved gap that was
        // long enough to bridge.
        if out.degradation.gaps_bridged > 0 {
            assert!(
                out.degradation.largest_gap_bridged_s > 0.0,
                "{ctx}: bridged gap with zero span"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Adaptive-beam decoder properties (derived-seed sweeps over the
// kernel knobs introduced with the SoA/f32 beam rewrite).
// ---------------------------------------------------------------------

/// A clean-glyph decode scenario: a smooth simulated pen path whose
/// observations are all mutually consistent (true step direction, an
/// annulus bracketing the true step length, the exact hyperbola
/// measurement at the destination). Returns the scenario plus the
/// ground-truth trajectory.
fn clean_glyph_scenario(
    rng: &mut Rng64,
) -> (
    polardraw_core::hmm::Grid,
    [Vec3; 2],
    Vec2,
    Vec<polardraw_core::hmm::StepObservation>,
    polardraw_core::hmm::HmmConfig,
) {
    use polardraw_core::distance::{expected_dtheta21, FeasibleRegion};
    use polardraw_core::hmm::{Grid, HmmConfig, StepObservation};

    let cell_m = rng.gen_range(0.004..0.012);
    let min = Vec2::new(rng.gen_range(-0.2..0.0), rng.gen_range(0.3..0.5));
    let span = Vec2::new(rng.gen_range(0.15..0.3), rng.gen_range(0.15..0.3));
    let grid = Grid::covering(min, min + span, cell_m);
    let antennas = [
        Vec3::new(rng.gen_range(-0.4..-0.2), rng.gen_range(0.1..0.2), rng.gen_range(0.5..0.7)),
        Vec3::new(rng.gen_range(0.2..0.4), rng.gen_range(0.1..0.2), rng.gen_range(0.5..0.7)),
    ];
    let config = HmmConfig { cell_m, ..HmmConfig::default() };
    let mut pos = min + span * 0.5;
    let start = pos;
    let mut heading = rng.gen_range(0.0..TAU);
    let n = 12 + rng.gen_index(12);
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        heading += rng.gaussian(0.3);
        let step_len = rng.gen_range(cell_m * 1.2..cell_m * 2.5);
        let mut next = pos + Vec2::from_angle(heading) * step_len;
        // Steer back toward the middle rather than walking off-board.
        if next.x < min.x + span.x * 0.1
            || next.x > min.x + span.x * 0.9
            || next.y < min.y + span.y * 0.1
            || next.y > min.y + span.y * 0.9
        {
            let center = min + span * 0.5;
            heading = (center - pos).angle();
            next = pos + Vec2::from_angle(heading) * step_len;
        }
        let dir = (next - pos) * (1.0 / step_len);
        steps.push(StepObservation {
            region: FeasibleRegion { min_dist: step_len * 0.7, max_dist: step_len * 1.4 },
            direction: Some(dir),
            dtheta21: Some(expected_dtheta21(next, antennas, config.wavelength_m)),
            target_dist: step_len,
        });
        pos = next;
    }
    (grid, antennas, start, steps, config)
}

/// On clean glyphs the adaptive beam must never prune the surviving
/// path: with the default margin, the exact-precision adaptive decode
/// returns bit-for-bit the non-adaptive track. The sweep also checks
/// the shrinking is real (not vacuous) in aggregate.
#[test]
fn adaptive_beam_never_prunes_the_surviving_path_on_clean_glyphs() {
    use polardraw_core::hmm::{viterbi_with_kernel, AdaptiveBeam, KernelOptions};

    let mut shrunk_total = 0usize;
    sweep("adaptive_clean_glyphs", 64, |rng, ctx| {
        let (grid, antennas, start, steps, config) = clean_glyph_scenario(rng);
        let (want, _) = viterbi_with_kernel(
            &grid, antennas, start, &steps, &config, 2500, KernelOptions::exact(),
        );
        let kernel =
            KernelOptions::exact().with_adaptive(Some(AdaptiveBeam::default()));
        let (got, stats) =
            viterbi_with_kernel(&grid, antennas, start, &steps, &config, 2500, kernel);
        assert_eq!(got.len(), want.len(), "{ctx}: track lengths differ");
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!(
                a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                "{ctx}: adaptive pruning changed point {k}: {a:?} vs {b:?}"
            );
        }
        shrunk_total += stats.adaptive_shrunk_steps;
    });
    assert!(shrunk_total > 0, "the adaptive beam never engaged across the whole sweep");
}

/// Under alternating concentrated / diffuse observation phases (the
/// beam shrinks, then must regrow), the frontier never exceeds the
/// configured beam and the cumulative work counters stay monotone.
#[test]
fn adaptive_frontier_counters_monotone_and_bounded_under_shrink_regrow() {
    use polardraw_core::distance::{expected_dtheta21, FeasibleRegion};
    use polardraw_core::hmm::{
        AdaptiveBeam, FixedLagDecoder, KernelOptions, KernelPrecision, StepObservation,
    };

    sweep("adaptive_shrink_regrow", 48, |rng, ctx| {
        let (grid, antennas, start, clean_steps, config) = clean_glyph_scenario(rng);
        let beam = [64usize, 256, 2500][rng.gen_index(3)];
        let precision = if rng.gen_bool(0.5) {
            KernelPrecision::F64Exact
        } else {
            KernelPrecision::F32Tolerance
        };
        let kernel = KernelOptions { precision, adaptive: None, threads: 1 }
            .with_adaptive(Some(AdaptiveBeam {
                margin: rng.gen_range(0.5..8.0),
                min_keep: 8 + rng.gen_index(64),
            }));
        let mut dec =
            FixedLagDecoder::new(grid, antennas, start, config, beam, usize::MAX);
        dec.set_kernel(kernel);
        // Interleave: concentrated steps (clean, direction + hyperbola)
        // with diffuse ones (no prior at all, wide annulus) so the
        // frontier shrinks and regrows repeatedly.
        let diffuse = StepObservation {
            region: FeasibleRegion { min_dist: 0.0, max_dist: config.cell_m * 4.0 },
            direction: None,
            dtheta21: None,
            target_dist: config.cell_m,
        };
        let mut prev = dec.stats();
        let mut max_seen_frontier = 0usize;
        for (k, obs) in clean_steps.iter().enumerate() {
            for obs in [obs, &diffuse, &diffuse] {
                dec.step(obs);
                let cur = dec.stats();
                let frontier = dec.frontier().len();
                max_seen_frontier = max_seen_frontier.max(frontier);
                // Bounded by the configured beam (after the ≥8 clamp).
                assert!(
                    frontier <= beam.max(8),
                    "{ctx}: step {k}: frontier {frontier} > beam {beam}"
                );
                assert!(
                    cur.max_frontier <= beam.max(8),
                    "{ctx}: step {k}: max_frontier {} > beam {beam}",
                    cur.max_frontier
                );
                // Monotone cumulative counters.
                assert!(cur.steps == prev.steps + 1, "{ctx}: steps must advance");
                assert!(cur.expansions >= prev.expansions, "{ctx}: expansions regressed");
                assert!(
                    cur.total_frontier >= prev.total_frontier,
                    "{ctx}: total_frontier regressed"
                );
                assert!(
                    cur.touched_cells >= prev.touched_cells,
                    "{ctx}: touched_cells regressed"
                );
                assert!(
                    cur.pruned_beam >= prev.pruned_beam,
                    "{ctx}: pruned_beam regressed"
                );
                assert!(
                    cur.adaptive_shrunk_steps >= prev.adaptive_shrunk_steps,
                    "{ctx}: adaptive_shrunk_steps regressed"
                );
                assert!(
                    cur.max_frontier >= prev.max_frontier,
                    "{ctx}: max_frontier must be a running maximum"
                );
                prev = cur;
            }
        }
        // The diffuse phases must actually regrow the frontier past the
        // adaptive floor at least once, or the cycle is vacuous.
        assert!(
            max_seen_frontier > 8,
            "{ctx}: frontier never regrew (max {max_seen_frontier})"
        );
    });
}
