//! A live supervised tracking session over a fault-injected reader
//! stream — the streaming counterpart of `examples/robustness.rs`.
//!
//! The pipeline here is the production shape: a simulated LLRP reader
//! connection ([`SimulatedLink`]) carrying a flaky-office stream with a
//! hard mid-glyph outage and occasional wire garbage, supervised by a
//! [`SessionSupervisor`] (watchdog, reconnect backoff, dead-port
//! detection), feeding an [`OnlineTracker`] that commits trail points
//! behind a fixed decision lag. Mid-session the process "dies": the
//! tracker is checkpointed to JSON, dropped, restored, and the session
//! resumes where the connection left off.
//!
//! ```sh
//! cargo run --release --example live_session
//! ```

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::procrustes_distance;
use rfid_sim::faults::FaultPlan;
use rfid_sim::session::{SessionConfig, SessionEvent, SessionSupervisor, SimulatedLink};

fn main() {
    // A pen writing the letter "W" in a flaky office: Gilbert–Elliott
    // burst dropouts, duplicated and reordered reads, clock jitter.
    let mut setup = TrialSetup::letter('W');
    setup.faults = Some(FaultPlan::flaky_office());
    let seed = 42;
    let (truth, reports) = simulate_reports(&setup, seed);
    let cfg = polardraw_config_for(&setup);
    let t_hi = reports.iter().map(|r| r.t).fold(f64::NEG_INFINITY, f64::max);
    let t_mid = 0.5 * t_hi;

    println!("stream: {} reports over {:.1} s of writing", reports.len(), t_hi);
    println!("faults: flaky office + link outage [{:.1}, {:.1}] s + wire garbage\n", t_mid, t_mid + 0.4);

    // The reader link: frames every 50 ms, a 0.4 s TCP drop mid-glyph,
    // and an undecodable garbage frame before every 6th real one.
    let link = SimulatedLink::from_reports(&reports, 0.05)
        .with_outage(t_mid, t_mid + 0.4)
        .with_garbage_every(6);
    let session_cfg = SessionConfig { seed, ..SessionConfig::default() };

    // ---- First leg: supervise until the process "dies" mid-glyph. ----
    let mut sup = SessionSupervisor::new(session_cfg, link.clone());
    let mut tracker = OnlineTracker::new(cfg, OnlineOptions { lag: 64, hold: 2, ..OnlineOptions::default() });
    let t_kill = 0.65 * t_hi;
    sup.run(&mut tracker, 0.0, t_kill);
    println!(
        "first leg  [0.0, {t_kill:.1}] s: {} reports delivered, {} committed points",
        sup.stats().reports_delivered,
        tracker.committed().len(),
    );

    // Checkpoint the complete decoder state to JSON and "crash".
    let checkpoint = tracker.checkpoint_string();
    println!("checkpoint: {} bytes of JSON; killing the session\n", checkpoint.len());
    drop(tracker);

    // ---- Second leg: restore and resume where the link left off. ----
    let mut tracker = OnlineTracker::restore_from_str(cfg, &checkpoint).expect("restore");
    let link_b = link.clone().resume_after(sup.link());
    let mut sup_b = SessionSupervisor::new(session_cfg, link_b);
    sup_b.run(&mut tracker, t_kill, t_hi + 2.0);
    println!(
        "second leg [{t_kill:.1}, end] s: {} reports delivered, {} committed points",
        sup_b.stats().reports_delivered,
        tracker.committed().len(),
    );

    // What the supervisors saw, in order.
    println!("\nsession events:");
    for (leg, events) in [("A", sup.events()), ("B", sup_b.events())] {
        for e in events {
            match e {
                SessionEvent::Connected { t } => println!("  [{leg}] {t:6.2} s  connected"),
                SessionEvent::WatchdogStall { t, silent_for_s } => {
                    println!("  [{leg}] {t:6.2} s  watchdog: silent for {silent_for_s:.2} s")
                }
                SessionEvent::Disconnected { t } => println!("  [{leg}] {t:6.2} s  link dropped"),
                SessionEvent::Reconnected { t, attempts } => {
                    println!("  [{leg}] {t:6.2} s  reconnected after {attempts} attempt(s)")
                }
                SessionEvent::GaveUp { t, attempts } => {
                    println!("  [{leg}] {t:6.2} s  gave up after {attempts} attempts")
                }
                SessionEvent::PortDead { t, antenna } => {
                    println!("  [{leg}] {t:6.2} s  antenna port {antenna} dead → degraded mode")
                }
                SessionEvent::PortRecovered { t, antenna } => {
                    println!("  [{leg}] {t:6.2} s  antenna port {antenna} recovered")
                }
                // Reconnect attempts and per-frame garbage are chatty;
                // they are summarized by the stats below.
                SessionEvent::ReconnectAttempt { .. } | SessionEvent::BadFrame { .. } => {}
                SessionEvent::PanicIsolated { context } => {
                    println!("  [{leg}]          sink panic isolated: {context}")
                }
            }
        }
    }
    println!(
        "  bad wire frames rejected: {} (leg A) + {} (leg B)",
        sup.stats().bad_frames,
        sup_b.stats().bad_frames,
    );

    // Finalize: global rotation correction + smoothing over the full
    // trail, with the degradation census the whole way through.
    let out = tracker.finalize();
    println!("\ntrail: {} points ({} decoder steps)", out.trail.len(), out.steps.len());
    let d = &out.degradation;
    println!("degradation report:");
    println!("  input reports        {}", d.input_reports);
    println!("  duplicates removed   {}", d.duplicates_removed);
    println!("  spurious rejected    {}", d.spurious_rejected);
    println!("  empty windows        {} of {}", d.empty_windows, d.windows);
    println!("  single-antenna       {}", d.single_antenna_windows);
    println!("  gaps bridged         {} (largest {:.2} s)", d.gaps_bridged, d.largest_gap_bridged_s);
    if let Some(err) = procrustes_distance(&truth, &out.trail.points, 64) {
        println!("\nProcrustes error vs ground truth: {:.1} cm", 100.0 * err);
    }
}
