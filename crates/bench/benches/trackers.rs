//! End-to-end tracker benchmarks: PolarDraw vs Tagoram vs RF-IDraw on
//! identical-length report streams — the runtime side of the §5.3
//! comparison (accuracy is the `repro` harness's job).

use baselines::{RfIdraw, RfIdrawConfig, Tagoram, TagoramConfig};
use polardraw_bench::harness::Bench;
use polardraw_bench::letter_reports;
use polardraw_core::{PolarDraw, PolarDrawConfig};
use rfid_sim::TrajectoryTracker;

fn main() {
    let mut bench = Bench::from_args("trackers");

    let reports = letter_reports('W', 11);

    let pd = PolarDraw::new(PolarDrawConfig::default());
    bench.bench("trackers/letter_W/polardraw_2ant", || pd.track(&reports));

    let mut nopol_cfg = PolarDrawConfig::default();
    nopol_cfg.use_polarization = false;
    let nopol = PolarDraw::new(nopol_cfg);
    bench.bench("trackers/letter_W/polardraw_no_polarization", || nopol.track(&reports));

    let tagoram = Tagoram::new(TagoramConfig::two_antenna());
    bench.bench("trackers/letter_W/tagoram_2ant", || tagoram.track(&reports));

    let rfidraw = RfIdraw::new(RfIdrawConfig::four_antenna());
    bench.bench("trackers/letter_W/rfidraw_4ant", || rfidraw.track(&reports));

    // §3.5: Viterbi decoding "can be computed in real-time even with an
    // embedded mini PC". One 50 ms window of a ~9 s letter session must
    // decode in ≪ 50 ms: we measure the whole track and report
    // per-iteration time; divide by ~180 windows to compare.
    let rt_reports = letter_reports('O', 13);
    let rt = PolarDraw::new(PolarDrawConfig::default());
    bench.bench("trackers/realtime/full_letter_decode_budget", || rt.track(&rt_reports));

    bench.finish();
}
