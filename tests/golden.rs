//! Golden-trace snapshot tests: pin the Determinism contract in
//! DESIGN.md against committed artifacts.
//!
//! Two layers:
//!
//! * **Report snapshots** — three representative experiments (fig13,
//!   table5, table6) re-run on the reduced-fidelity configuration the
//!   registry smoke test uses (`trials = 1`, `cell_scale = 8`,
//!   seed 42) must serialize bit-identically to the JSON committed
//!   under `tests/snapshots/`.
//! * **Trace snapshot** — one full-fidelity letter trial ('L', seed 42)
//!   must reproduce its committed `TagReport` stream and recovered
//!   trail bit-for-bit, with faults disabled *and* under an identity
//!   `FaultPlan` (the injector's no-op guarantee).
//!
//! The snapshots were generated from the pre-fault-layer code, so these
//! tests prove the fault-injection PR changed nothing on clean input.
//!
//! To regenerate after an *intentional* behaviour change:
//! `GOLDEN_REGEN=1 cargo test --test golden` — then review the diff.

use experiments::runner::RunOpts;
use experiments::setup::{run_trial, TrialSetup};
use rf_core::json::{Json, ToJson};
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name)
}

/// Compare `actual` against the committed snapshot, or rewrite the
/// snapshot when `GOLDEN_REGEN` is set.
fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); run GOLDEN_REGEN=1", path.display()));
    assert!(
        expected == actual,
        "{name}: output drifted from the committed golden snapshot.\n\
         If this change is intentional, regenerate with GOLDEN_REGEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// The reduced-fidelity configuration shared with `registry_smoke.rs`.
fn golden_opts() -> RunOpts {
    RunOpts { trials: 1, cell_scale: 8.0, seed: 42, ..RunOpts::default() }
}

#[test]
fn golden_report_fig13() {
    run_report_snapshot("fig13");
}

#[test]
fn golden_report_table5() {
    run_report_snapshot("table5");
}

#[test]
fn golden_report_table6() {
    run_report_snapshot("table6");
}

fn run_report_snapshot(id: &str) {
    let def = experiments::registry::find(id).unwrap_or_else(|| panic!("{id} registered"));
    let reports = (def.run)(&golden_opts());
    let report = reports
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("{id} produced by its definition"));
    assert_matches_snapshot(&format!("{id}.json"), &report.to_json().to_json_string());
}

/// Serialize a full-fidelity trial (stream + recovered trail) with the
/// workspace JSON writer's shortest-round-trip `f64` formatting, so a
/// string comparison is a bit-for-bit comparison.
fn trace_json(run: &experiments::setup::TrialRun) -> String {
    Json::obj([
        ("letter", Json::str("L")),
        ("seed", Json::Num(42.0)),
        ("reports", Json::Arr(run.reports.iter().map(|r| r.to_json()).collect())),
        ("trail_times", Json::Arr(run.trail.times.iter().map(|&t| Json::Num(t)).collect())),
        (
            "trail_points",
            Json::Arr(
                run.trail
                    .points
                    .iter()
                    .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                    .collect(),
            ),
        ),
    ])
    .to_json_string()
}

#[test]
fn golden_trace_letter_trial() {
    let run = run_trial(&TrialSetup::letter('L'), 42);
    assert_matches_snapshot("trace_letter_L.json", &trace_json(&run));
}
