//! The tracker interface shared by PolarDraw and the baseline systems.
//!
//! A trajectory tracker consumes an LLRP report stream (plus whatever
//! geometry it was constructed with) and produces a 2-D pen trail in
//! board coordinates. Keeping the trait here — next to [`TagReport`] —
//! lets `polardraw-core` and `baselines` stay independent of each other
//! while the `experiments` harness drives them interchangeably.
//!
//! The report streams trackers consume come out of [`crate::Reader`]'s
//! inventory loops, which evaluate the forward model through the
//! rig-frozen batch path (`rf_physics::batch::RigFactors`) on
//! fixed-carrier plans — bit-identical observations to the per-link
//! model, produced without re-deriving per-rig factors on every round.

use crate::TagReport;
use rf_core::Vec2;

/// A recovered pen trail: timestamped planar points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trail {
    /// Timestamps, seconds.
    pub times: Vec<f64>,
    /// Recovered positions, metres (board frame).
    pub points: Vec<Vec2>,
}

impl Trail {
    /// Build from parallel vectors.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn new(times: Vec<f64>, points: Vec<Vec2>) -> Trail {
        assert_eq!(times.len(), points.len(), "times/points length mismatch");
        Trail { times, points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trail is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total path length, metres.
    pub fn ink_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// Anything that can turn a report stream into a pen trail.
pub trait TrajectoryTracker {
    /// Human-readable system name (used in experiment tables).
    fn name(&self) -> &str;

    /// Number of reader antennas this instance assumes.
    fn antenna_count(&self) -> usize;

    /// Recover the pen trail from a report stream.
    fn track(&self, reports: &[TagReport]) -> Trail;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Centroid;

    impl TrajectoryTracker for Centroid {
        fn name(&self) -> &str {
            "centroid-stub"
        }
        fn antenna_count(&self) -> usize {
            1
        }
        fn track(&self, reports: &[TagReport]) -> Trail {
            let times = reports.iter().map(|r| r.t).collect();
            let points = reports.iter().map(|_| Vec2::ZERO).collect();
            Trail::new(times, points)
        }
    }

    #[test]
    fn trait_objects_work() {
        let tracker: Box<dyn TrajectoryTracker> = Box::new(Centroid);
        let reports = vec![TagReport {
            t: 0.0,
            antenna: 0,
            rssi_dbm: -40.0,
            phase_rad: 0.0,
            channel: 0,
            epc: 1,
        }];
        let trail = tracker.track(&reports);
        assert_eq!(trail.len(), 1);
        assert_eq!(tracker.name(), "centroid-stub");
    }

    #[test]
    fn trail_ink_length() {
        let trail = Trail::new(
            vec![0.0, 1.0, 2.0],
            vec![Vec2::new(0.0, 0.0), Vec2::new(0.03, 0.04), Vec2::new(0.03, 0.04)],
        );
        assert!((trail.ink_length() - 0.05).abs() < 1e-12);
        assert!(!trail.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Trail::new(vec![0.0], vec![]);
    }
}
