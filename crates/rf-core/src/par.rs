//! The workspace's one scoped-thread fan-out primitive.
//!
//! Everything in the repo that wants data parallelism — experiment
//! trial sweeps, the emission-table row build, the multi-session serve
//! pool — goes through [`parallel_map`] (pure fan-out producing new
//! values) or [`parallel_for_each_mut`] (in-place visits over long-lived
//! slots) so there is a single place where work claiming, buffering,
//! and order restoration are reasoned about. The primitives are
//! deliberately boring: scoped `std::thread` workers, an atomic claim
//! counter, and a merge that relies on one documented invariant
//! (below). No channels, no locks on the completion path, no unsafe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `jobs` through `f` on up to `threads` workers, preserving order.
///
/// Work is claimed job-by-job from a shared atomic counter (so one slow
/// job doesn't idle the other workers) and each worker appends its
/// results to a thread-local buffer, pre-sized to the fair share
/// `n / workers + 1` so steady-state claiming never reallocates.
///
/// # The claim-order invariant
///
/// `fetch_add` hands each worker a strictly increasing sequence of job
/// indices, so every worker's buffer is already sorted by index, and
/// the buffers jointly partition `0..n` (each index is claimed exactly
/// once). The merge therefore never needs an `O(n)` scatter table: for
/// each output position `e` in `0..n`, exactly one buffer's head holds
/// index `e` — a scan over at most `workers` heads finds it. Total
/// merge cost is `O(n · workers)` comparisons and zero extra `Option`
/// slots, versus the previous `O(n)` `Vec<Option<R>>` scatter that
/// allocated (and branch-checked) a slot per job.
///
/// A panicking job propagates: the scope joins all workers and the
/// panic is re-raised here, so callers never observe partial output.
pub fn parallel_map<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    if workers == 1 {
        // Fast path: no scope, no claim counter, direct in-order map.
        return jobs.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Fair share + 1 covers the remainder when n is not
                    // divisible by `workers`; uneven claiming beyond
                    // that (a worker winning extra short jobs) grows
                    // the buffer organically, which is rare and cheap.
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(n / workers + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    // K-way head-scan merge, justified by the claim-order invariant.
    let mut heads: Vec<_> = buffers.into_iter().map(|b| b.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(n);
    for expect in 0..n {
        let slot = heads
            .iter_mut()
            .position(|it| it.peek().map(|(i, _)| *i) == Some(expect))
            .expect("claim-order invariant: exactly one worker holds the next index");
        let (_, r) = heads[slot].next().expect("peeked head exists");
        out.push(r);
    }
    out
}

/// The `i`-th of `chunks` contiguous ranges evenly partitioning `0..n`,
/// as a `[lo, hi)` pair: the first `n % chunks` ranges get one extra
/// element, so sizes differ by at most one and the ranges jointly cover
/// `0..n` in order, without gaps or overlap.
///
/// This is the fan-out geometry for work that must stay *ordered* while
/// being claimed in parallel — the decoder's chunked frontier expansion
/// splits its frontier with this and merges chunk results back in chunk
/// index order, which is what makes the parallel expansion bit-identical
/// to the sequential scan.
pub fn chunk_bounds(n: usize, chunks: usize, i: usize) -> (usize, usize) {
    let chunks = chunks.max(1);
    assert!(i < chunks, "chunk index {i} out of {chunks}");
    let base = n / chunks;
    let rem = n % chunks;
    let lo = i * base + i.min(rem);
    let hi = lo + base + usize::from(i < rem);
    (lo, hi)
}

/// Run `f` on every element of `slots` in place, on up to `threads`
/// workers, claiming slots from the same kind of shared atomic counter
/// as [`parallel_map`].
///
/// This is the substrate for stateful fan-out: each slot is a long-lived
/// session (or any `&mut` state) that must be visited exactly once per
/// round, and the visit order across slots must not matter. The serve
/// pool drains its sessions through this, which is what makes its
/// output trivially identical to a sequential drain: parallelism is
/// *across* slots, never within one, so each slot sees exactly the
/// mutation sequence it would see single-threaded.
///
/// Each slot is wrapped in a `Mutex` solely to hand the `&mut`
/// reference across the scope boundary without unsafe; the claim
/// counter guarantees every slot index is claimed exactly once, so
/// every lock is uncontended by construction (a worker only locks the
/// slot it just claimed). A panicking visit propagates after the scope
/// joins, so callers never observe a half-visited round silently.
pub fn parallel_for_each_mut<T, F>(slots: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = slots.len();
    if n == 0 {
        return;
    }
    let workers = threads.max(1).min(n);
    if workers == 1 {
        // Fast path: no scope, no wrapping, plain in-order visit.
        for slot in slots.iter_mut() {
            f(slot);
        }
        return;
    }
    let cells: Vec<Mutex<&mut T>> = slots.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut slot = cells[i].lock().expect("slot claimed exactly once");
                    f(&mut slot);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let jobs: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map(jobs.clone(), threads, |&x| x * 3 + 1);
            assert_eq!(out, (0..257).map(|x| x * 3 + 1).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_single_and_more_threads_than_jobs() {
        assert!(parallel_map(Vec::<u8>::new(), 4, |&x| x).is_empty());
        assert_eq!(parallel_map(vec![7], 16, |&x| x + 1), vec![8]);
        assert_eq!(parallel_map(vec![1, 2, 3], 0, |&x| x), vec![1, 2, 3], "0 threads clamps to 1");
    }

    #[test]
    fn uneven_job_durations_still_merge_in_order() {
        // Long jobs early force later indices to finish first on other
        // workers, exercising the merge's head scan across buffers.
        let jobs: Vec<u64> = (0..64).collect();
        let out = parallel_map(jobs, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_mut_visits_every_slot_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut slots: Vec<(u64, u32)> = (0..257).map(|i| (i, 0)).collect();
            parallel_for_each_mut(&mut slots, threads, |s| {
                s.0 = s.0 * 3 + 1;
                s.1 += 1;
            });
            for (i, (v, visits)) in slots.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 3 + 1, "threads={threads}");
                assert_eq!(*visits, 1, "slot {i} visited once, threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_mut_empty_and_more_threads_than_slots() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_each_mut(&mut empty, 4, |_| unreachable!("no slots"));
        let mut one = vec![41u8];
        parallel_for_each_mut(&mut one, 16, |s| *s += 1);
        assert_eq!(one, vec![42]);
        let mut zero_threads = vec![1u8, 2, 3];
        parallel_for_each_mut(&mut zero_threads, 0, |s| *s *= 2);
        assert_eq!(zero_threads, vec![2, 4, 6], "0 threads clamps to 1");
    }

    #[test]
    fn for_each_mut_stateful_slots_match_sequential() {
        // Each slot accumulates a per-slot sequence; parallelism across
        // slots must not change any slot's own history.
        let mut par: Vec<Vec<u64>> = (0..32).map(|i| vec![i]).collect();
        let mut seq = par.clone();
        let visit = |s: &mut Vec<u64>| {
            let last = *s.last().expect("seeded");
            s.push(last.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407));
        };
        for _ in 0..5 {
            parallel_for_each_mut(&mut par, 8, visit);
            for s in seq.iter_mut() {
                visit(s);
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for n in [0usize, 1, 2, 3, 7, 8, 9, 64, 257, 2500] {
            for chunks in [1usize, 2, 3, 7, 8, 16] {
                let mut expect_lo = 0;
                let mut sizes = Vec::new();
                for i in 0..chunks {
                    let (lo, hi) = chunk_bounds(n, chunks, i);
                    assert_eq!(lo, expect_lo, "n={n} chunks={chunks} i={i}: contiguous");
                    assert!(hi >= lo, "n={n} chunks={chunks} i={i}: ordered");
                    sizes.push(hi - lo);
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, n, "n={n} chunks={chunks}: covers 0..n");
                let max = sizes.iter().copied().max().unwrap();
                let min = sizes.iter().copied().min().unwrap();
                assert!(max - min <= 1, "n={n} chunks={chunks}: even split, sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn chunk_bounds_degenerate_inputs() {
        // 0 chunks clamps to 1: one range holding everything.
        assert_eq!(chunk_bounds(5, 0, 0), (0, 5));
        // More chunks than elements: leading singletons, then empties.
        assert_eq!(chunk_bounds(2, 4, 0), (0, 1));
        assert_eq!(chunk_bounds(2, 4, 1), (1, 2));
        assert_eq!(chunk_bounds(2, 4, 2), (2, 2));
        assert_eq!(chunk_bounds(2, 4, 3), (2, 2));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn chunk_bounds_rejects_out_of_range_index() {
        chunk_bounds(10, 2, 2);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn for_each_mut_panic_propagates() {
        let mut slots = vec![0u32, 1, 2, 3];
        parallel_for_each_mut(&mut slots, 2, |s| {
            assert!(*s != 2, "boom");
        });
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn job_panic_propagates() {
        let _ = parallel_map(vec![0u32, 1, 2, 3], 2, |&x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
