//! 2×2 matrices.
//!
//! The paper's final trajectory-correction step (Eq. 10) multiplies the
//! recovered point sequence by a rotation matrix to undo the residual
//! initial-azimuth error; Procrustes analysis in the `recognition` crate
//! also solves for an optimal rotation.

use crate::vec::Vec2;

/// A 2×2 matrix in row-major order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Row 0, column 0.
    pub a: f64,
    /// Row 0, column 1.
    pub b: f64,
    /// Row 1, column 0.
    pub c: f64,
    /// Row 1, column 1.
    pub d: f64,
}

impl Mat2 {
    /// Identity matrix.
    pub const IDENTITY: Mat2 = Mat2 { a: 1.0, b: 0.0, c: 0.0, d: 1.0 };

    /// Construct from rows `[a b; c d]`.
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Mat2 {
        Mat2 { a, b, c, d }
    }

    /// Counter-clockwise rotation by `angle` radians.
    pub fn rotation(angle: f64) -> Mat2 {
        let (s, c) = angle.sin_cos();
        Mat2::new(c, -s, s, c)
    }

    /// Uniform scaling.
    pub fn scaling(s: f64) -> Mat2 {
        Mat2::new(s, 0.0, 0.0, s)
    }

    /// Matrix–vector product.
    pub fn apply(self, v: Vec2) -> Vec2 {
        Vec2::new(self.a * v.x + self.b * v.y, self.c * v.x + self.d * v.y)
    }

    /// Matrix–matrix product `self · rhs`.
    pub fn mul(self, rhs: Mat2) -> Mat2 {
        Mat2::new(
            self.a * rhs.a + self.b * rhs.c,
            self.a * rhs.b + self.b * rhs.d,
            self.c * rhs.a + self.d * rhs.c,
            self.c * rhs.b + self.d * rhs.d,
        )
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Transpose.
    pub fn transpose(self) -> Mat2 {
        Mat2::new(self.a, self.c, self.b, self.d)
    }

    /// Inverse; `None` if singular.
    pub fn inverse(self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() < 1e-12 {
            return None;
        }
        Some(Mat2::new(self.d / det, -self.b / det, -self.c / det, self.a / det))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn rotation_is_orthonormal() {
        let r = Mat2::rotation(0.9);
        let rtr = r.transpose().mul(r);
        assert!((rtr.a - 1.0).abs() < 1e-12 && rtr.b.abs() < 1e-12);
        assert!(rtr.c.abs() < 1e-12 && (rtr.d - 1.0).abs() < 1e-12);
        assert!((r.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarter_turn_maps_x_to_y() {
        let r = Mat2::rotation(FRAC_PI_2);
        let v = r.apply(Vec2::new(1.0, 0.0));
        assert!(v.x.abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_undoes_transform() {
        let m = Mat2::new(2.0, 1.0, -1.0, 3.0);
        let inv = m.inverse().unwrap();
        let id = m.mul(inv);
        assert!((id.a - 1.0).abs() < 1e-12 && id.b.abs() < 1e-12);
        assert!(id.c.abs() < 1e-12 && (id.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        assert!(Mat2::new(1.0, 2.0, 2.0, 4.0).inverse().is_none());
    }

    #[test]
    fn rotation_composition_adds_angles() {
        let r = Mat2::rotation(0.3).mul(Mat2::rotation(0.4));
        let expect = Mat2::rotation(0.7);
        assert!((r.a - expect.a).abs() < 1e-12 && (r.b - expect.b).abs() < 1e-12);
    }
}
