//! # baselines — the comparison trackers of §5.3
//!
//! The paper evaluates PolarDraw against two state-of-the-art RFID
//! trackers, re-implemented on the same report stream:
//!
//! * [`tagoram`] — Tagoram (Yang et al., MobiCom 2014): the
//!   *differential augmented hologram*. Every grid cell is scored by how
//!   consistently the *changes* in each antenna's phase match the
//!   changes the cell hypothesis predicts; differencing cancels the
//!   unknown tag/cable phase offsets. Works with any antenna count
//!   (§5.1 compares both the 2- and 4-antenna variants).
//! * [`rfidraw`] — RF-IDraw (Wang et al., SIGCOMM 2014): antenna-pair
//!   interferometry. Each pair's phase difference constrains the tag to
//!   a hyperbola family; intersecting the families from (near-)
//!   orthogonal pairs yields a position fix per window. The paper
//!   compares the 4-antenna variant ("Most COTS RFID readers support
//!   four antennas apiece"), which is what we implement.
//!
//! Both implement [`rfid_sim::TrajectoryTracker`], so the experiment
//! harness drives them interchangeably with PolarDraw.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod rfidraw;
pub mod tagoram;

pub use rfidraw::{RfIdraw, RfIdrawConfig};
pub use tagoram::{Tagoram, TagoramConfig};
