#!/usr/bin/env bash
# Measure performance and refresh the committed baselines.
#
# Two suites, both run at full methodology (200 ms warmup, 11 samples,
# median-of-N — see crates/bench/src/harness.rs):
#
# * decode — the Viterbi hot path. Copies the report to
#   BENCH_decode.json and enforces three gates at the paper-fidelity
#   workload (cell 2.5 mm, beam 2500, 100 steps):
#   - the headline fast-kernel-vs-reference speedup floor
#     (decode/opt vs decode/ref, default 8×: f32 tables + adaptive
#     beam compound well past the old exact-path floor of 3×);
#   - the adaptive beam must keep paying on top of the f32 tables
#     (decode/opt vs decode/f32 ≥ 1.5×), so it cannot silently
#     degenerate into a no-op;
#   - the bit-exact f64 SoA path must keep beating the naive
#     reference on its own (decode/exact vs decode/ref ≥ 2×).
# * fleet — the sharded fleet front door. Copies the report to
#   BENCH_fleet.json and enforces two gates:
#   - the no-collapse floor: p99 per-report step latency under 8×
#     overload (fleet/step/sessions256/overload8x/p99) must stay
#     within 10× the unloaded fleet's p50
#     (fleet/step/sessions256) — backpressure plus the degradation
#     ladder must turn overload into deferral and cheaper kernels,
#     never into a latency cliff;
#   - the same core-count-aware scaling floor as the throughput
#     suite, on the 64-session fleet lifecycle at threads 1 vs 8.
# * throughput — the multi-session serving engine. Copies the report
#   to BENCH_throughput.json and enforces two gates:
#   - a core-count-aware scaling floor on the 8-session drain,
#     threads1 vs threads8: ≥ 4.0× with 8+ hardware threads, ≥ 1.5×
#     with 2+, and ≥ 0.8× on a single core (thread scaling is honest
#     wall-clock — one core cannot speed up CPU-bound work, so there
#     the gate only proves the pool doesn't collapse under its own
#     overhead);
#   - an absolute 80 ms ceiling on the contended step row
#     (serve/step/sessions8/threads8): one drain advancing all 8
#     sessions one pre-processing window each must stay within 8 × the
#     single-session 10 ms guarantee scripts/verify.sh enforces.
# * components — the physics/pipeline micro-benchmarks, filtered to the
#   channel rows. Gates the scalar fast path against the committed
#   BENCH_components.json at 1.1× *before* refreshing the baseline: the
#   Jones layer must not tax the legacy cos²β path the committed
#   artifacts were produced under. The jones row rides along as the
#   measured cost of `--channel jones` per link.
# * channel — the batched channel-evaluation engine. Copies the report
#   to BENCH_channel.json and enforces three gates at the paper-fidelity
#   emission workload (the default board at 2.5 mm) plus one link gate:
#   - the F32Tolerance-tier direct emission build must beat the
#     retained per-link build ≥ 4× (the headline batch payoff);
#   - the bitwise f64 row build must beat per-link ≥ 1.5× on its own;
#   - the restructured Jones batch kernel must beat per-link Jones
#     link evaluation ≥ 2×.
#   Also re-runs the components channel rows and holds them to the
#   committed BENCH_components.json at 1.1× WITHOUT refreshing that
#   baseline: the batch engine must not tax the per-link paths.
#
# Usage: scripts/bench.sh [--suite decode|throughput|fleet|components|channel|all] [--min-speedup X]
#   --suite        which suite(s) to run (default all)
#   --min-speedup  decode opt-vs-ref floor (default 8.0)
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP=8.0
SUITE=all
while [ $# -gt 0 ]; do
    case "$1" in
        --min-speedup) MIN_SPEEDUP="$2"; shift 2 ;;
        --suite) SUITE="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done
case "$SUITE" in
    decode|throughput|fleet|components|channel|all) ;;
    *) echo "unknown suite: $SUITE (want decode|throughput|fleet|components|channel|all)" >&2; exit 2 ;;
esac

# The thread-scaling floor is a property of the host's core count; the
# measurement is honest wall-clock either way.
NPROC=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$NPROC" -ge 8 ]; then
    SCALE_FLOOR=4.0
elif [ "$NPROC" -ge 2 ]; then
    SCALE_FLOOR=1.5
else
    SCALE_FLOOR=0.8
fi

if [ "$SUITE" = decode ] || [ "$SUITE" = all ]; then
    echo "== bench: decode suite (full methodology; takes a few minutes) =="
    cargo bench --offline -p polardraw-bench --bench decode

    cp results/bench_decode.json BENCH_decode.json
    echo "== bench: wrote BENCH_decode.json =="

    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_decode.json --min-speedup "$MIN_SPEEDUP"

    # Kernel-layer gates (see crates/bench/benches/decode.rs): the
    # adaptive beam on top of the f32 tables, and the exact f64 SoA
    # path on its own.
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_decode.json --min-speedup 1.5 \
        --ref decode/f32/cell2.5mm/beam2500/steps100 \
        --opt decode/opt/cell2.5mm/beam2500/steps100
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_decode.json --min-speedup 2.0 \
        --ref decode/ref/cell2.5mm/beam2500/steps100 \
        --opt decode/exact/cell2.5mm/beam2500/steps100
fi

if [ "$SUITE" = throughput ] || [ "$SUITE" = all ]; then
    echo "== bench: throughput suite (full methodology) =="
    cargo bench --offline -p polardraw-bench --bench throughput

    cp results/bench_throughput.json BENCH_throughput.json
    echo "== bench: wrote BENCH_throughput.json =="

    echo "== bench: scaling gate at ${SCALE_FLOOR}x (host has ${NPROC} hardware thread(s)) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_throughput.json \
        --min-speedup "$SCALE_FLOOR" \
        --ref serve/drain/sessions8/threads1 \
        --opt serve/drain/sessions8/threads8 \
        --max-median "serve/step/sessions8/threads8=80000000"
fi

if [ "$SUITE" = fleet ] || [ "$SUITE" = all ]; then
    echo "== bench: fleet suite (full methodology) =="
    cargo bench --offline -p polardraw-bench --bench fleet

    cp results/bench_fleet.json BENCH_fleet.json
    echo "== bench: wrote BENCH_fleet.json =="

    # No-collapse floor: under 8x overload the p99 per-report step
    # latency must stay within 10x the unloaded fleet's p50. bench_check
    # asserts median(ref)/median(opt) >= floor, so with ref = unloaded
    # p50 and opt = overloaded p99 the 0.1 floor is exactly that bound.
    echo "== bench: fleet no-collapse gate (overload8x p99 <= 10x unloaded p50) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_fleet.json \
        --min-speedup 0.1 \
        --ref fleet/step/sessions256 \
        --opt fleet/step/sessions256/overload8x/p99

    echo "== bench: fleet scaling gate at ${SCALE_FLOOR}x (host has ${NPROC} hardware thread(s)) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_fleet.json \
        --min-speedup "$SCALE_FLOOR" \
        --ref fleet/lifecycle/sessions64/threads1 \
        --opt fleet/lifecycle/sessions64/threads8

    # Absolute ceiling on per-session crash recovery (checkpoint open +
    # CRC verify + tracker rebuild for a 128-report warm session):
    # 20 ms. Recovery must stay interactive — a shard restart serving
    # hundreds of sessions has to come back in seconds, not minutes.
    echo "== bench: fleet recovery ceiling (recover() <= 20 ms/session) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        BENCH_fleet.json \
        --max-median "fleet/recover/session=20000000"
fi

if [ "$SUITE" = components ] || [ "$SUITE" = all ]; then
    echo "== bench: components suite (channel rows, full methodology) =="
    mkdir -p results/components
    cargo bench --offline -p polardraw-bench --bench components -- \
        --filter "channel/" --out "$(pwd)/results/components"

    # No-collapse floor FIRST, against the committed baseline: the
    # scalar fast path must stay within 1.1x of what it cost before the
    # polarimetric layer landed. Only then refresh the baseline.
    if [ -f BENCH_components.json ]; then
        echo "== bench: scalar-channel no-collapse gate (1.1x of committed baseline) =="
        cargo run --release --offline -p polardraw-bench --bin bench_check -- \
            results/components/bench_components.json \
            --baseline BENCH_components.json --max-regression 1.1
    fi

    cp results/components/bench_components.json BENCH_components.json
    echo "== bench: wrote BENCH_components.json =="
fi

if [ "$SUITE" = channel ] || [ "$SUITE" = all ]; then
    echo "== bench: channel suite (batched engine, full methodology) =="
    mkdir -p results/channel
    cargo bench --offline -p polardraw-bench --bench channel -- \
        --out "$(pwd)/results/channel"

    # Headline batch payoff: the F32Tolerance-tier direct emission build
    # against the retained per-link build at paper fidelity.
    echo "== bench: emission f32 batch gate (>= 4x per-link at 2.5 mm) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/channel/bench_channel.json \
        --min-speedup 4.0 \
        --ref channel/emission/per_link/cell2.5mm \
        --opt channel/emission/batch_f32/cell2.5mm

    # The bitwise f64 row build must pay on its own (hoisting + SoA,
    # same bits).
    echo "== bench: emission exact batch gate (>= 1.5x per-link at 2.5 mm) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/channel/bench_channel.json \
        --min-speedup 1.5 \
        --ref channel/emission/per_link/cell2.5mm \
        --opt channel/emission/batch/cell2.5mm

    # The restructured Jones batch kernel against per-link Jones links.
    echo "== bench: jones link batch gate (>= 2x per-link) =="
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/channel/bench_channel.json \
        --min-speedup 2.0 \
        --ref channel/link/jones/per_link/poses512 \
        --opt channel/link/jones/batch/poses512

    # No-regression on the per-link paths: re-measure the components
    # channel rows and hold them to the committed baseline — but do NOT
    # refresh it here (that is the components suite's job).
    if [ -f BENCH_components.json ]; then
        echo "== bench: per-link no-collapse gate (1.1x of committed components baseline) =="
        mkdir -p results/channel-components
        cargo bench --offline -p polardraw-bench --bench components -- \
            --filter "channel/" --out "$(pwd)/results/channel-components"
        cargo run --release --offline -p polardraw-bench --bin bench_check -- \
            results/channel-components/bench_components.json \
            --baseline BENCH_components.json --max-regression 1.1
    fi

    cp results/channel/bench_channel.json BENCH_channel.json
    echo "== bench: wrote BENCH_channel.json =="
fi
