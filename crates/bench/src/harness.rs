//! A std-only benchmark harness (criterion replacement).
//!
//! Each bench target is a plain `harness = false` binary that builds a
//! [`Bench`], registers closures, and calls [`Bench::finish`]. The
//! methodology is deliberately simple and robust:
//!
//! 1. **Warmup**: the closure runs untimed until ~200 ms have elapsed
//!    (at least once), letting caches/branch predictors settle.
//! 2. **Calibration**: the warmup's observed per-iteration time picks an
//!    iteration count per sample targeting ~50 ms of work.
//! 3. **Measurement**: N samples (default 11) each time `iters`
//!    back-to-back calls; per-iteration nanoseconds are recorded.
//! 4. **Median-of-N**: the reported statistic is the median, with
//!    p10/p90 for spread — robust to scheduler noise without criterion's
//!    outlier machinery.
//!
//! Results print as an aligned table and are written under `results/` as
//! `bench_<suite>.csv` and `bench_<suite>.json`, in exactly the
//! [`Report`] format the `repro` binary uses for experiment outputs, so
//! downstream tooling reads both with one parser.
//!
//! CLI: `cargo bench -p polardraw-bench [--bench <target>] -- [--filter
//! SUBSTR] [--quick] [--out DIR]`. `--quick` (or env
//! `POLARDRAW_BENCH_QUICK=1`) cuts warmup/samples to a smoke-test level.

use experiments::Report;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Harness configuration (all overridable from the CLI).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Minimum warmup wall time per bench.
    pub warmup: Duration,
    /// Target wall time for one measured sample.
    pub sample_target: Duration,
    /// Number of measured samples (median is reported).
    pub samples: usize,
    /// Only run benches whose name contains this substring.
    pub filter: Option<String>,
    /// Output directory for CSV/JSON results.
    pub out_dir: std::path::PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(200),
            sample_target: Duration::from_millis(50),
            samples: 11,
            filter: None,
            // cargo runs bench binaries with the package directory as
            // CWD; anchor to the workspace root so results land next to
            // the `repro` harness's.
            out_dir: std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../results"
            )),
        }
    }
}

impl BenchConfig {
    /// A near-instant configuration for smoke tests.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(1),
            sample_target: Duration::from_millis(1),
            samples: 3,
            ..BenchConfig::default()
        }
    }
}

/// One bench's measured statistics, nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Bench name (`group/case`).
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Samples taken.
    pub samples: usize,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
}

/// A benchmark suite under construction.
pub struct Bench {
    suite: String,
    config: BenchConfig,
    stats: Vec<BenchStats>,
    notes: Vec<String>,
}

impl Bench {
    /// Build a suite with an explicit configuration.
    pub fn with_config(suite: &str, config: BenchConfig) -> Bench {
        Bench { suite: suite.to_string(), config, stats: Vec::new(), notes: Vec::new() }
    }

    /// Build a suite, reading options from the process arguments
    /// (ignoring the flags cargo itself passes to bench binaries).
    pub fn from_args(suite: &str) -> Bench {
        let mut config = if std::env::var_os("POLARDRAW_BENCH_QUICK").is_some() {
            BenchConfig::quick()
        } else {
            BenchConfig::default()
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--filter" => config.filter = it.next(),
                "--quick" => {
                    let out_dir = config.out_dir.clone();
                    config = BenchConfig::quick();
                    config.out_dir = out_dir;
                }
                "--out" => {
                    if let Some(dir) = it.next() {
                        config.out_dir = dir.into();
                    }
                }
                // `cargo bench` invokes every bench target with `--bench`;
                // a bare non-flag argument is treated as a filter, which
                // matches the familiar `cargo bench -- <substr>` habit.
                "--bench" => {}
                other if !other.starts_with('-') => config.filter = Some(other.to_string()),
                _ => {}
            }
        }
        Bench::with_config(suite, config)
    }

    /// Register and run one benchmark closure.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.config.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }

        // Warmup + calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < self.config.warmup {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters = ((self.config.sample_target.as_secs_f64() / per_iter.max(1e-9)).ceil()
            as u64)
            .clamp(1, 1_000_000_000);

        // Measurement.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let pct = |q: f64| -> f64 {
            let idx = (q * (per_iter_ns.len() - 1) as f64).round() as usize;
            per_iter_ns[idx]
        };
        let stats = BenchStats {
            name: name.to_string(),
            iters,
            samples: per_iter_ns.len(),
            median_ns: pct(0.5),
            p10_ns: pct(0.1),
            p90_ns: pct(0.9),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        };
        eprintln!(
            "  {:<44} median {:>12}  (p10 {}, p90 {}, {} iters × {} samples)",
            stats.name,
            format_ns(stats.median_ns),
            format_ns(stats.p10_ns),
            format_ns(stats.p90_ns),
            stats.iters,
            stats.samples,
        );
        self.stats.push(stats);
    }

    /// Register a row from externally measured per-iteration samples,
    /// nanoseconds. For workloads the closure protocol can't express —
    /// e.g. per-round latencies inside one long fleet run, where each
    /// round mutates the fleet and rounds are *not* interchangeable —
    /// the caller times its own rounds and publishes the distribution
    /// here. Percentiles are computed exactly like [`bench`]'s
    /// (`iters` is recorded as 1); the name filter applies as usual.
    /// Empty sample sets are ignored.
    ///
    /// [`bench`]: Bench::bench
    pub fn record_ns(&mut self, name: &str, samples_ns: &[f64]) {
        if let Some(filter) = &self.config.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if samples_ns.is_empty() {
            return;
        }
        let mut per_iter_ns = samples_ns.to_vec();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| -> f64 {
            let idx = (q * (per_iter_ns.len() - 1) as f64).round() as usize;
            per_iter_ns[idx]
        };
        let stats = BenchStats {
            name: name.to_string(),
            iters: 1,
            samples: per_iter_ns.len(),
            median_ns: pct(0.5),
            p10_ns: pct(0.1),
            p90_ns: pct(0.9),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        };
        eprintln!(
            "  {:<44} median {:>12}  (p10 {}, p90 {}, {} recorded samples)",
            stats.name,
            format_ns(stats.median_ns),
            format_ns(stats.p10_ns),
            format_ns(stats.p90_ns),
            stats.samples,
        );
        self.stats.push(stats);
    }

    /// The measured statistics so far.
    pub fn stats(&self) -> &[BenchStats] {
        &self.stats
    }

    /// Attach a free-form note to the suite report (workload shapes,
    /// decode work counters — context the timing rows can't carry).
    pub fn note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Fold the suite's results into a [`Report`] (the same structure
    /// the `repro` harness emits).
    pub fn to_report(&self) -> Report {
        let mut report = Report::new(
            &format!("bench_{}", self.suite),
            &format!("std-only benchmark suite `{}`", self.suite),
            "timing backs §3.5's real-time claim; see DESIGN.md",
        )
        .headers(vec![
            "bench",
            "median_ns",
            "p10_ns",
            "p90_ns",
            "mean_ns",
            "iters",
            "samples",
        ]);
        for s in &self.stats {
            report.push_row(vec![
                s.name.clone(),
                format!("{:.1}", s.median_ns),
                format!("{:.1}", s.p10_ns),
                format!("{:.1}", s.p90_ns),
                format!("{:.1}", s.mean_ns),
                s.iters.to_string(),
                s.samples.to_string(),
            ]);
        }
        for note in &self.notes {
            report.push_note(note.clone());
        }
        report
    }

    /// Print the suite table and write `bench_<suite>.{csv,json}`.
    pub fn finish(self) {
        use rf_core::json::ToJson as _;
        let report = self.to_report();
        println!("\n{report}");
        if let Err(e) = std::fs::create_dir_all(&self.config.out_dir).and_then(|()| {
            std::fs::File::create(self.config.out_dir.join(format!("{}.csv", report.id)))?
                .write_all(report.to_csv().as_bytes())?;
            std::fs::File::create(self.config.out_dir.join(format!("{}.json", report.id)))?
                .write_all(report.to_json().to_json_string().as_bytes())
        }) {
            eprintln!(
                "warning: could not write {}/{}.{{csv,json}}: {e}",
                self.config.out_dir.display(),
                report.id
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench() -> Bench {
        Bench::with_config("selftest", BenchConfig::quick())
    }

    #[test]
    fn bench_measures_and_reports() {
        let mut b = quick_bench();
        b.bench("sum_1k", || (0..1000u64).sum::<u64>());
        assert_eq!(b.stats().len(), 1);
        let s = &b.stats()[0];
        assert!(s.median_ns > 0.0 && s.median_ns.is_finite());
        assert!(s.p10_ns <= s.median_ns && s.median_ns <= s.p90_ns);
        assert_eq!(s.samples, 3);
        let report = b.to_report();
        assert_eq!(report.id, "bench_selftest");
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0][0], "sum_1k");
    }

    #[test]
    fn record_ns_publishes_percentiles_of_recorded_samples() {
        let mut b = quick_bench();
        let samples: Vec<f64> = (1..=101).map(|i| i as f64 * 100.0).collect();
        b.record_ns("recorded", &samples);
        b.record_ns("recorded/p99", &[9_900.0]);
        b.record_ns("empty", &[]);
        assert_eq!(b.stats().len(), 2, "empty sample sets are ignored");
        let s = &b.stats()[0];
        assert_eq!(s.median_ns, 5_100.0);
        assert_eq!(s.iters, 1);
        assert_eq!(s.samples, 101);
        assert_eq!(b.stats()[1].median_ns, 9_900.0, "single sample = that value");
    }

    #[test]
    fn filter_skips_nonmatching_benches() {
        let mut config = BenchConfig::quick();
        config.filter = Some("keep".to_string());
        let mut b = Bench::with_config("filtered", config);
        b.bench("keep_me", || 1u64);
        b.bench("drop_me", || 2u64);
        assert_eq!(b.stats().len(), 1);
        assert_eq!(b.stats()[0].name, "keep_me");
    }

    #[test]
    fn notes_land_in_the_report() {
        let mut b = quick_bench();
        b.bench("noted", || 0u8);
        b.note("workload: synthetic");
        let report = b.to_report();
        assert_eq!(report.notes, vec!["workload: synthetic".to_string()]);
    }

    #[test]
    fn report_json_round_trips() {
        use rf_core::json::{FromJson, ToJson};
        let mut b = quick_bench();
        b.bench("tiny", || 0u8);
        let report = b.to_report();
        let back = experiments::Report::from_json(
            &rf_core::Json::parse(&report.to_json().to_json_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, report);
    }
}
