#!/usr/bin/env bash
# Tier-1 verification entrypoint (see ROADMAP.md).
#
# Builds and tests the whole workspace *offline* and then proves the
# dependency graph is hermetic: every crate in `cargo tree` must be a
# workspace member (path dependency). Any registry/git crate — even one
# that happens to be cached — fails the run.
#
# Usage: scripts/verify.sh [--quick-bench]
#
# --quick-bench additionally smoke-runs the decode bench suite in
# `--quick` mode (milliseconds of sampling, not a real measurement),
# checks the report parses, gates every decode row shared with the
# committed BENCH_decode.json baseline at a generous 1.5×, and holds
# the fast-kernel-vs-reference speedup above a quick-noise-tolerant 5×
# floor (quick mode is noisy; real measurements and the full 8× floor
# come from scripts/bench.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --quick-bench) QUICK_BENCH=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== verify: offline release build =="
cargo build --release --offline --workspace --benches

echo "== verify: offline test suite =="
cargo test -q --offline --workspace --release

echo "== verify: golden traces + fault layer =="
# Explicit tier-1 gates for the robustness layer (also part of the
# workspace suite above; named here so a failure is unmissable and so
# they run even if the target list is ever filtered):
# - tests/golden.rs pins bit-identical reports/traces vs committed
#   snapshots (the identity-FaultPlan no-op proof rides on these),
# - the fault-injection unit tests live in rfid-sim,
# - the adversarial-stream sweeps live in tests/properties.rs.
cargo test -q --offline --release --test golden
cargo test -q --offline --release -p rfid-sim faults

echo "== verify: decode kernel equivalence =="
# Explicit tier-1 gates for the vectorized beam kernels:
# - tests/kernel_equivalence.rs pins the two precision contracts: the
#   f64 SoA path bit-identical to viterbi_reference at threads 1/2/8,
#   and the f32 fast path inside the quantitative tolerance oracle
#   (per-step best scores, glyph-trail Procrustes < 1 cm, fig13
#   reduced-config letter-accuracy parity),
# - tests/decoder_equivalence.rs sweeps the intra-step-parallel merge
#   through the degenerate paths (collapse, carry-through, tiny beams).
cargo test -q --offline --release --test kernel_equivalence
cargo test -q --offline --release --test decoder_equivalence

echo "== verify: polarimetric channel =="
# Explicit tier-1 gates for the Jones channel layer:
# - tests/channel_equivalence.rs pins the reduction contract: on every
#   broadside linear-copolarized rig the Jones channel agrees with the
#   scalar cos²β path within 1e-12 per link and bit-for-bit through a
#   full letter trial, and is provably not a no-op off that family,
# - the physics-law unit tests (Fresnel Brewster/grazing closed forms,
#   the circular-reader 3 dB law, Jones unitarity/associativity) live
#   in rf-physics,
# - the polarization report snapshot + jones letter-L trace pin ride in
#   tests/golden.rs above.
cargo test -q --offline --release --test channel_equivalence
cargo test -q --offline --release -p rf-physics
cargo test -q --offline --release --test golden golden_report_polarization
cargo test -q --offline --release --test golden golden_trace_letter_trial_jones

echo "== verify: batched channel engine =="
# Explicit tier-1 gates for the SoA batch evaluation engine:
# - tests/channel_batch.rs pins the three precision contracts: the
#   scalar batch (and the rig-frozen single-link path for both
#   polarimetries) bit-identical to the per-link ChannelModel, the
#   restructured Jones batch within 1e-12 per observable across
#   Fresnel/circular/elliptical/reconfigurable variants, and the
#   F32Tolerance grid tier inside its quantitative oracle (wrap-aware
#   emission deltas vs the cast spec + fig13 reduced-config letter
#   parity) — with thread counts 1/2/8 bit-identical inside each tier,
# - the RigFactors freeze/evaluate unit tests live in rf-physics
#   (already run above), the row-kernel bitwise pins in polardraw-core.
cargo test -q --offline --release --test channel_batch
cargo test -q --offline --release -p polardraw-core dtheta_row

echo "== verify: online engine + supervised sessions =="
# Explicit tier-1 gates for the streaming layer:
# - tests/online_equivalence.rs pins batch == online bit-for-bit (lag ≥
#   horizon) and the checkpoint → restore → resume cut-point sweep,
# - tests/session.rs pins supervised recovery: reconnect within the
#   backoff schedule, checkpoint resume through the session layer, and
#   bounded accuracy loss under the fault presets,
# - the supervisor/link/backoff unit tests live in rfid-sim.
cargo test -q --offline --release --test online_equivalence
cargo test -q --offline --release --test session
cargo test -q --offline --release -p rfid-sim session

echo "== verify: multi-session serving =="
# Explicit tier-1 gates for the serving layer:
# - tests/serve.rs pins pool == sequential bit-for-bit (32 mixed-fault
#   sessions at threads 1/2/8), the 2-thread single-report stress run,
#   checkpoint/restore through the pool at swept cuts, and the
#   shared-decode-artifact memory gate (one emission table per rig,
#   however many sessions),
# - the pool/fan-in unit tests live in polardraw-core (serve), the
#   claim-order fan-out primitives in rf-core (par).
cargo test -q --offline --release --test serve
cargo test -q --offline --release -p polardraw-core serve
cargo test -q --offline --release -p rf-core par

echo "== verify: fleet front door =="
# Explicit tier-1 gates for the sharded fleet layer:
# - tests/fleet.rs pins live migration bitwise-equivalent to never
#   moving (swept cuts, queued reports carried, threads 1/2/8) and the
#   overload contract (bounded queues, deferral never drops, monotone
#   degradation, hysteretic recovery),
# - tests/serve_alloc.rs proves a warm single-thread drain round
#   allocates nothing (counting global allocator),
# - the router/controller unit tests live in polardraw-core (fleet),
#   the traffic-model unit tests in rfid-sim (traffic).
cargo test -q --offline --release --test fleet
cargo test -q --offline --release --test serve_alloc
cargo test -q --offline --release -p polardraw-core fleet
cargo test -q --offline --release -p rfid-sim traffic

echo "== verify: durability & crash recovery =="
# Explicit tier-1 gates for the crash-safe durability layer:
# - tests/durability.rs sweeps 2000 mutated checkpoint.v2 envelopes
#   through the typed-error parser (every semantic mutation rejected,
#   every accepted envelope bit-identical), pins the v1 → v2 migration
#   golden snapshot, and proves the store's stage-then-commit atomicity
#   plus generation walk-back over corrupted blobs,
# - tests/chaos.rs is the deterministic chaos soak: swept kill points ×
#   thread counts, corrupted-checkpoint fallbacks, duplicate recovery,
#   stalled drains, and random ChaosPlans — no panics, zero report
#   loss, recovery bitwise-identical to a fleet that never crashed,
# - the envelope/store unit tests live in polardraw-core (durability),
#   the chaos-plan/mutator unit tests in rfid-sim (chaos), and the
#   parser recursion-depth bound in rf-core (json).
cargo test -q --offline --release --test durability
cargo test -q --offline --release --test chaos
cargo test -q --offline --release -p polardraw-core durability
cargo test -q --offline --release -p rfid-sim chaos
cargo test -q --offline --release -p rf-core json

echo "== verify: no unwrap/expect on untrusted-input paths =="
# Grep lint over modules that parse bytes arriving from outside the
# process (checkpoint envelopes, LLRP frames, JSON) or that supervise
# crashed state. Test modules don't count (everything after the first
# `#[cfg(test)]` is stripped). Ceilings are the audited residue —
# each surviving site is invariant-backed (a slice the caller just
# length-checked, a field set before the only call site) and commented
# as such in the source; new untrusted-input unwraps fail the build.
lint_unwraps() {
    local file="$1" ceiling="$2"
    local n
    n=$(sed -n '1,/#\[cfg(test)\]/p' "$file" \
        | grep -c -E '\.unwrap\(\)|\.expect\(' || true)
    if [ "$n" -gt "$ceiling" ]; then
        echo "FAIL: $file has $n unwrap()/expect( sites above the audited ceiling of $ceiling" >&2
        exit 1
    fi
}
lint_unwraps crates/core/src/durability.rs 0
lint_unwraps crates/rf-core/src/json.rs 0
lint_unwraps crates/rfid-sim/src/chaos.rs 0
lint_unwraps crates/core/src/online.rs 2
lint_unwraps crates/core/src/fleet.rs 1
lint_unwraps crates/rfid-sim/src/llrp.rs 2

echo "== verify: dependency graph is workspace-only =="
# Every line of `cargo tree` that names a crate must carry the marker of
# a local path dependency: "(/…)" pointing into this repo. Registry
# crates print "vX.Y.Z" with no path; catch them.
nonlocal=$(cargo tree --offline --workspace --edges normal,build,dev --prefix none \
    | sort -u \
    | grep -v "($(pwd)" || true)
if [ -n "$nonlocal" ]; then
    echo "FAIL: non-workspace dependencies found:" >&2
    echo "$nonlocal" >&2
    exit 1
fi

if [ "$QUICK_BENCH" = 1 ]; then
    echo "== verify: decode bench smoke (--quick) =="
    mkdir -p results/quickbench
    # Bench binaries run with the package dir as CWD; --out must be
    # absolute to land at the repo root.
    # The filter keeps the reference row in the quick report so the
    # speedup floor is measured, not assumed; the floor (5×) sits well
    # under the full-methodology 8× gate to absorb quick-mode noise.
    cargo bench --offline -p polardraw-bench --bench decode -- \
        --quick --filter "cell2.5mm/beam2500/steps100" --out "$(pwd)/results/quickbench"
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/quickbench/bench_decode.json \
        --baseline BENCH_decode.json --max-regression 1.5 \
        --min-speedup 5.0

    echo "== verify: online step latency gate =="
    # The per-window online decode step, measured for real (not --quick:
    # a full warmup + 11-sample median takes well under a second) and
    # gated at an absolute 10 ms — the fixed-lag decoder must beat the
    # stream's window period, or live sessions fall behind their reader.
    mkdir -p results/quickbench_online
    cargo bench --offline -p polardraw-bench --bench decode -- \
        --filter decode/online --out "$(pwd)/results/quickbench_online"
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/quickbench_online/bench_decode.json \
        --max-median "decode/online/step/cell2.5mm/beam2500/lag64=10000000"

    echo "== verify: contended serve step gate =="
    # The serving pool's contended regime, measured for real: one drain
    # advancing 8 paper-fidelity sessions one pre-processing window
    # each, gated at an absolute 80 ms — 8 × the single-session 10 ms
    # guarantee above, so no session falls behind its reader even when
    # the whole fleet is busy.
    mkdir -p results/quickbench_serve
    cargo bench --offline -p polardraw-bench --bench throughput -- \
        --filter serve/step --out "$(pwd)/results/quickbench_serve"
    cargo run --release --offline -p polardraw-bench --bin bench_check -- \
        results/quickbench_serve/bench_throughput.json \
        --max-median "serve/step/sessions8/threads8=80000000"
fi

echo "verify: OK"
