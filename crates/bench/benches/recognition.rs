//! Recognizer benchmarks: Procrustes alignment, DTW, and full
//! alphabet classification — plus the ablation comparing the whitened
//! Procrustes matcher against plain similarity normalization.

use pen_sim::{Scene, WriterProfile};
use polardraw_bench::harness::Bench;
use recognition::dtw::{dtw_distance, sakoe_chiba_band};
use recognition::procrustes::align;
use recognition::resample::{prepare, prepare_whitened};
use recognition::LetterRecognizer;

fn trajectory(ch: char) -> Vec<rf_core::Vec2> {
    pen_sim::scene::write_text(&Scene::default(), &WriterProfile::natural(), &ch.to_string(), 3)
        .truth
        .points
}

fn main() {
    let mut bench = Bench::from_args("recognition");

    let a = prepare(&trajectory('W'), 64).unwrap();
    let b = prepare(&trajectory('M'), 64).unwrap();
    bench.bench("recognition/procrustes_align_64pt", || align(&a, &b, 0.35));

    let s = prepare(&trajectory('S'), 64).unwrap();
    let z = prepare(&trajectory('Z'), 64).unwrap();
    let band = sakoe_chiba_band(64);
    bench.bench(&format!("recognition/dtw_64pt_band{band}"), || dtw_distance(&s, &z, band));
    bench.bench("recognition/dtw_64pt_unbanded", || dtw_distance(&s, &z, usize::MAX));

    let raw = trajectory('Q');
    bench.bench("recognition/preparation/similarity_normalized", || prepare(&raw, 64));
    bench.bench("recognition/preparation/whitened", || prepare_whitened(&raw, 64));

    let rec = LetterRecognizer::new();
    let traj = trajectory('G');
    bench.bench("recognition/classify_against_26_templates", || rec.classify(&traj));

    bench.finish();
}
